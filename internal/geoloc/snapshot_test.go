package geoloc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"path/filepath"
	"testing"

	"hoiho/internal/core"
	"hoiho/internal/obs"
)

// lookupKey flattens a lookup outcome into a comparable string so two
// indexes can be checked for byte-identical serving behaviour.
func lookupKey(ix *Index, host string) string {
	g, ok := ix.Lookup(host)
	if !ok {
		return "miss"
	}
	return g.Suffix + "|" + g.Hint + "|" + g.Type.String() + "|" + g.Loc.String() +
		"|" + map[bool]string{true: "learned", false: "dict"}[g.Learned]
}

func TestSnapshotDeterministic(t *testing.T) {
	res, _, _ := learnFixture(t)
	var a, b bytes.Buffer
	if err := Save(&a, res, nil); err != nil {
		t.Fatal(err)
	}
	if err := Save(&b, res, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two Saves of the same Result differ: snapshot output is not deterministic")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	res, dict, list := learnFixture(t)
	tracer := obs.New(obs.Options{})
	var buf bytes.Buffer
	if err := Save(&buf, res, tracer); err != nil {
		t.Fatal(err)
	}

	got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()), tracer)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.NCs) != len(res.NCs) {
		t.Fatalf("round trip lost conventions: got %d, want %d", len(got.NCs), len(res.NCs))
	}
	if got.SuffixesWithGeohint != res.SuffixesWithGeohint ||
		got.RoutersWithGeohint != res.RoutersWithGeohint ||
		got.RoutersGeolocated != res.RoutersGeolocated {
		t.Fatalf("round trip lost Result totals: got %d/%d/%d, want %d/%d/%d",
			got.SuffixesWithGeohint, got.RoutersWithGeohint, got.RoutersGeolocated,
			res.SuffixesWithGeohint, res.RoutersWithGeohint, res.RoutersGeolocated)
	}

	// The snapshot-built index must serve every probe identically to the
	// index compiled straight from the pipeline's Result.
	direct, err := New(res, Options{Dict: dict, PSL: list, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	fromSnap, err := Load(bytes.NewReader(buf.Bytes()), Options{Dict: dict, PSL: list, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, host := range probeHosts {
		if d, s := lookupKey(direct, host), lookupKey(fromSnap, host); d != s {
			t.Errorf("lookup %q diverged: direct %s, snapshot %s", host, d, s)
		}
	}

	sum := tracer.Summary()
	var names []string
	for _, row := range sum.Stages {
		names = append(names, row.Name)
	}
	for _, want := range []string{"snapshot-save", "snapshot-load"} {
		found := false
		for _, n := range names {
			found = found || n == want
		}
		if !found {
			t.Errorf("tracer recorded no %q span (stages: %v)", want, names)
		}
	}
}

// TestSnapshotGoldenRoundTrip drives the full committed corpus through
// learn -> Save -> Load and checks lookup equivalence over every golden
// hostname — the end-to-end guarantee the geosnap/geoserve pair relies on.
func TestSnapshotGoldenRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("golden pipeline run in -short mode")
	}
	in, err := LoadInputs(filepath.Join("..", "..", "testdata", "golden"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(in, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, res, nil); err != nil {
		t.Fatal(err)
	}
	direct, err := New(res, Options{Dict: in.Dict, PSL: in.PSL, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	fromSnap, err := Load(bytes.NewReader(buf.Bytes()), Options{Dict: in.Dict, PSL: in.PSL, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	hosts := 0
	for _, r := range in.Corpus.Routers {
		for _, host := range r.Hostnames() {
			hosts++
			if d, s := lookupKey(direct, host), lookupKey(fromSnap, host); d != s {
				t.Errorf("lookup %q diverged: direct %s, snapshot %s", host, d, s)
			}
		}
	}
	if hosts == 0 {
		t.Fatal("golden corpus has no hostnames")
	}
}

func TestSnapshotCorruption(t *testing.T) {
	res, _, _ := learnFixture(t)
	var buf bytes.Buffer
	if err := Save(&buf, res, nil); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	flip := func(at int) []byte {
		c := append([]byte(nil), good...)
		c[at] ^= 0x40
		return c
	}
	versioned := append([]byte(nil), good...)
	versioned[8] = 99 // version field, little-endian low byte

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty file", nil, ErrSnapshotEmpty},
		{"cut mid-magic", good[:5], ErrSnapshotTruncated},
		{"cut after magic", good[:8], ErrSnapshotTruncated},
		{"cut mid-body", good[:len(good)/2], ErrSnapshotTruncated},
		{"missing trailer", good[:len(good)-4], ErrSnapshotTruncated},
		{"short trailer", good[:len(good)-2], ErrSnapshotTruncated},
		{"foreign file", []byte("#conventions v1: not a snapshot\n"), ErrSnapshotMagic},
		{"wrong version", versioned, ErrSnapshotVersion},
		{"flipped payload byte", flip(payloadByte(t, good)), ErrSnapshotChecksum},
		{"flipped trailer byte", flip(len(good) - 1), ErrSnapshotChecksum},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Any panic here fails the test; corruption must always
			// surface as the matching typed error.
			res, err := ReadSnapshot(bytes.NewReader(tc.data), nil)
			if err == nil {
				t.Fatalf("corrupted snapshot decoded to %d conventions", len(res.NCs))
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want errors.Is(err, %v)", err, tc.want)
			}
		})
	}
}

// payloadByte locates the first byte inside a non-empty section payload,
// so the flipped-byte case corrupts conventions text rather than framing.
func payloadByte(t *testing.T, snap []byte) int {
	t.Helper()
	le := binary.LittleEndian
	off := 8 + 4 // magic + version
	metaLen := int(le.Uint32(snap[off:]))
	off += 4 + metaLen
	sections := int(le.Uint32(snap[off:]))
	off += 4
	for i := 0; i < sections; i++ {
		payloadLen := int(le.Uint32(snap[off:]))
		off += 8 // length + CRC
		if payloadLen > 0 {
			return off
		}
	}
	t.Fatal("snapshot has no non-empty section to corrupt")
	return 0
}

func TestSnapshotNilResult(t *testing.T) {
	if err := Save(&bytes.Buffer{}, nil, nil); err == nil {
		t.Fatal("Save(nil) should error")
	}
}
