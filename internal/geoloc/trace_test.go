package geoloc

import (
	"bytes"
	"testing"

	"hoiho/internal/core"
	"hoiho/internal/obs"
)

// TestTracedIndex checks the serving-side spans: a geoloc-compile span
// at New with the build-time regex count, and per-batch lookup spans
// whose locally-counted hostnames/located/cache_hits match the batch's
// actual results.
func TestTracedIndex(t *testing.T) {
	tr := obs.New(obs.Options{RetainSpans: true})
	ix := newTestIndex(t, Options{Tracer: tr})

	first := ix.LookupBatch(probeHosts)
	located := int64(0)
	for _, g := range first {
		if g != nil {
			located++
		}
	}
	ix.LookupBatch(probeHosts) // identical second batch: all cache hits

	var compile, batches []obs.TraceRecord
	for _, r := range tr.Export() {
		switch r.Name {
		case "geoloc-compile":
			compile = append(compile, r)
		case "lookup-batch":
			batches = append(batches, r)
		}
	}
	if len(compile) != 1 {
		t.Fatalf("exported %d geoloc-compile spans, want 1", len(compile))
	}
	if compile[0].Counters["conventions"] != int64(ix.Len()) {
		t.Errorf("compile span conventions = %d, want %d", compile[0].Counters["conventions"], ix.Len())
	}
	// The live fixture Result's regex caches are already warm from the
	// pipeline run, so this compile span legitimately counts zero new
	// compilations. A Result read back from the published format has
	// cold caches: its build must count every regex.
	res, dict, list := learnFixture(t)
	var buf bytes.Buffer
	if err := core.WriteConventions(&buf, res); err != nil {
		t.Fatal(err)
	}
	cold, err := core.ReadConventions(&buf)
	if err != nil {
		t.Fatal(err)
	}
	coldTr := obs.New(obs.Options{RetainSpans: true})
	if _, err := New(cold, Options{Dict: dict, PSL: list, Tracer: coldTr}); err != nil {
		t.Fatal(err)
	}
	coldRecs := coldTr.Export()
	if len(coldRecs) != 1 || coldRecs[0].Counters["matchers_compiled"] == 0 {
		t.Errorf("cold-cache build spans = %+v, want one span counting matcher builds", coldRecs)
	}
	if len(batches) != 2 {
		t.Fatalf("exported %d lookup-batch spans, want 2", len(batches))
	}
	for i, b := range batches {
		if b.Counters["hostnames"] != int64(len(probeHosts)) {
			t.Errorf("batch %d hostnames = %d, want %d", i, b.Counters["hostnames"], len(probeHosts))
		}
		if b.Counters["located"] != located {
			t.Errorf("batch %d located = %d, want %d", i, b.Counters["located"], located)
		}
	}
	// probeHosts holds one case-variant duplicate that normalizes to an
	// earlier entry, so even the cold batch scores exactly one hit.
	if batches[0].Counters["cache_hits"] != 1 {
		t.Errorf("cold batch cache_hits = %d, want 1 (the normalized duplicate)", batches[0].Counters["cache_hits"])
	}
	if hits := batches[1].Counters["cache_hits"]; hits != int64(len(probeHosts)) {
		t.Errorf("warm batch cache_hits = %d, want %d", hits, len(probeHosts))
	}
}
