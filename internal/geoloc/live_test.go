package geoloc

import (
	"sync"
	"testing"

	"hoiho/internal/core"
)

func TestLiveSwapGeneration(t *testing.T) {
	ixA := newTestIndex(t, Options{CacheSize: -1})
	ixB := newTestIndex(t, Options{CacheSize: -1})
	live := NewLive(ixA)
	if live.Generation() != 1 {
		t.Fatalf("boot generation = %d, want 1", live.Generation())
	}
	if live.Index() != ixA {
		t.Fatal("boot index not served")
	}
	old, gen := live.Swap(ixB)
	if old != ixA || gen != 2 {
		t.Fatalf("Swap returned (%p, %d), want (%p, 2)", old, gen, ixA)
	}
	if live.Index() != ixB || live.Generation() != 2 {
		t.Fatal("swap did not publish the replacement")
	}
}

// TestLiveConcurrentSwaps drives lookups from many goroutines while the
// index is swapped repeatedly — the zero-downtime property, checked
// under the race detector in CI. Every lookup must complete against a
// coherent index; a request that loaded the old pointer finishes on it.
func TestLiveConcurrentSwaps(t *testing.T) {
	ixA := newTestIndex(t, Options{CacheSize: -1})
	ixB := newTestIndex(t, Options{CacheSize: -1})
	live := NewLive(ixA)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ix := live.Index()
				for _, host := range probeHosts {
					ix.Lookup(host)
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		next := ixB
		if i%2 == 1 {
			next = ixA
		}
		if err := SpotCheck(live.Index(), next, 8); err != nil {
			t.Errorf("swap %d: spot check failed: %v", i, err)
		}
		live.Swap(next)
	}
	close(stop)
	wg.Wait()
	if live.Generation() != 51 {
		t.Fatalf("generation = %d after 50 swaps, want 51", live.Generation())
	}
}

func TestSpotCheckRejectsBadReplacements(t *testing.T) {
	ix := newTestIndex(t, Options{CacheSize: -1})
	if err := SpotCheck(ix, nil, 0); err == nil {
		t.Error("nil replacement should fail the spot check")
	}
	empty, err := New(&core.Result{NCs: map[string]*core.NamingConvention{}},
		Options{Dict: ix.dict, PSL: ix.list})
	if err != nil {
		t.Fatal(err)
	}
	if err := SpotCheck(ix, empty, 0); err == nil {
		t.Error("empty replacement should fail the spot check")
	}
	if err := SpotCheck(nil, ix, 0); err != nil {
		t.Errorf("boot spot check (no old index) failed: %v", err)
	}
	if err := SpotCheck(ix, ix, 2); err != nil {
		t.Errorf("self spot check failed: %v", err)
	}
}
