package geoloc

// The unified Source API: every command that stands up conventions —
// hoiho, geoserve, geoeval, geobench, geosnap — used to carry its own
// copy of the -nc/-corpus/-no-learn/-workers flag cluster and the
// resolution logic behind it. Source is that cluster, once: a value the
// command registers onto its FlagSet, then resolves into a compiled
// Index (plus the Result it came from and, for corpus sources, the
// loaded inputs). Snapshots (-snapshot) are a first-class input
// alongside published conventions and corpus learning.

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hoiho/internal/core"
	"hoiho/internal/obs"
)

// Kind identifies which input a Source resolves from.
type Kind int

const (
	// FromNone means no input flag was set.
	FromNone Kind = iota
	// FromSnapshot loads a compiled-index snapshot (see Save/Load).
	FromSnapshot
	// FromConventions reads a published conventions file (hoiho -write-nc).
	FromConventions
	// FromCorpus learns conventions from an ITDK-shaped corpus directory.
	FromCorpus
)

// String names the kind the way its flag is spelled.
func (k Kind) String() string {
	switch k {
	case FromSnapshot:
		return "snapshot"
	case FromConventions:
		return "nc"
	case FromCorpus:
		return "corpus"
	}
	return "none"
}

// Source is the shared input configuration for conventions: exactly one
// of Snapshot, NC, or Corpus names where they come from, and NoLearn /
// Workers configure the learning run when the input is a corpus. Field
// values present before RegisterFlags become the flag defaults.
type Source struct {
	// Snapshot is a compiled-index snapshot file (produced by geosnap).
	Snapshot string
	// NC is a published conventions file (produced by hoiho -write-nc).
	NC string
	// Corpus is a directory with corpus.nodes, corpus.names, rtt.matrix.
	Corpus string
	// NoLearn disables stage-4 custom geohint learning (corpus only).
	NoLearn bool
	// Workers is the suffix-group learning concurrency (corpus only;
	// 0 = GOMAXPROCS, 1 = sequential; results are identical).
	Workers int
}

// RegisterFlags registers the full input cluster — -snapshot, -nc,
// -corpus, and the learning flags — on fs.
func (s *Source) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&s.Snapshot, "snapshot", s.Snapshot,
		"compiled-index snapshot file to serve (produced by geosnap)")
	fs.StringVar(&s.NC, "nc", s.NC,
		"published conventions file (produced by hoiho -write-nc)")
	fs.StringVar(&s.Corpus, "corpus", s.Corpus,
		"directory with corpus.nodes/corpus.names/rtt.matrix to learn from")
	s.RegisterLearnFlags(fs)
}

// RegisterLearnFlags registers only the learning-configuration flags
// (-no-learn, -workers), for commands that generate their own corpora.
func (s *Source) RegisterLearnFlags(fs *flag.FlagSet) {
	fs.BoolVar(&s.NoLearn, "no-learn", s.NoLearn,
		"disable stage-4 custom geohint learning (with -corpus)")
	fs.IntVar(&s.Workers, "workers", s.Workers,
		"suffix groups learned concurrently (0 = GOMAXPROCS, 1 = sequential; results are identical)")
}

// Kind reports which input the Source names, or an error when none or
// more than one is set — the shared contract the per-command checks
// used to duplicate.
func (s *Source) Kind() (Kind, error) {
	var set []string
	kind := FromNone
	if s.Snapshot != "" {
		set, kind = append(set, "-snapshot"), FromSnapshot
	}
	if s.NC != "" {
		set, kind = append(set, "-nc"), FromConventions
	}
	if s.Corpus != "" {
		set, kind = append(set, "-corpus"), FromCorpus
	}
	// These errors surface directly as CLI usage messages, so they name
	// flags, not this package.
	switch len(set) {
	case 0:
		return FromNone, fmt.Errorf("one of -snapshot, -nc, or -corpus is required")
	case 1:
		return kind, nil
	}
	return FromNone, fmt.Errorf("%s are mutually exclusive", strings.Join(set, ", "))
}

// Describe renders the source for log lines, e.g. "snapshot ix.snap".
func (s *Source) Describe() string {
	kind, err := s.Kind()
	if err != nil {
		return "unresolved source"
	}
	return kind.String() + " " + s.path()
}

func (s *Source) path() string {
	switch {
	case s.Snapshot != "":
		return s.Snapshot
	case s.NC != "":
		return s.NC
	}
	return s.Corpus
}

// CoreConfig builds the pipeline configuration a corpus resolution
// runs with: defaults plus the Source's learning flags and the tracer.
func (s *Source) CoreConfig(tracer *obs.Tracer) core.Config {
	cfg := core.DefaultConfig()
	cfg.LearnHints = !s.NoLearn
	cfg.Workers = s.Workers
	cfg.Tracer = tracer
	return cfg
}

// Resolved is the outcome of Source.Resolve: the compiled serving
// Index, the Result it was built from (snapshot metadata totals, or the
// live pipeline output), and — for corpus sources only — the loaded
// pipeline inputs, for callers that post-process the corpus (-names,
// -asn, benchmarks).
type Resolved struct {
	Index  *Index
	Result *core.Result
	Inputs *core.Inputs
}

// Resolve obtains conventions from the configured input and compiles
// them into an Index with opts. It is the single entry point behind
// every command's cold start, and geoserve re-invokes it on each
// reload, so a Source must stay valid for the process lifetime (the
// named files are re-read every call).
func (s *Source) Resolve(opts Options) (*Resolved, error) {
	kind, err := s.Kind()
	if err != nil {
		return nil, err
	}
	r := &Resolved{}
	switch kind {
	case FromSnapshot:
		f, err := os.Open(s.Snapshot)
		if err != nil {
			return nil, err
		}
		r.Result, err = ReadSnapshot(f, opts.Tracer)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Snapshot, err)
		}
	case FromConventions:
		if r.Result, err = LoadConventions(s.NC); err != nil {
			return nil, err
		}
	case FromCorpus:
		in, err := LoadInputs(s.Corpus)
		if err != nil {
			return nil, err
		}
		if r.Result, err = core.Run(in, s.CoreConfig(opts.Tracer)); err != nil {
			return nil, err
		}
		r.Inputs = &in
	}
	if r.Index, err = New(r.Result, opts); err != nil {
		return nil, err
	}
	return r, nil
}
