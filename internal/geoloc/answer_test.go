package geoloc

import (
	"reflect"
	"testing"

	"hoiho/internal/core"
	"hoiho/internal/geo"
	"hoiho/internal/geodict"
)

func sampleGeolocation() *core.Geolocation {
	return &core.Geolocation{
		Hostname: "ash1.he.net",
		Suffix:   "he.net",
		Hint:     "ash",
		Type:     geodict.HintIATA,
		Loc: &geodict.Location{
			City: "ashburn", Region: "va", Country: "us",
			Pos: geo.LatLong{Lat: 39.0437, Long: -77.4875},
		},
	}
}

func TestAnswerStrings(t *testing.T) {
	got := AnswerStrings(sampleGeolocation())
	want := []string{
		"city=ashburn", "region=va", "country=us",
		"lat=39.0437", "long=-77.4875",
		"suffix=he.net", "hint=ash", "type=iata",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("AnswerStrings = %v, want %v", got, want)
	}
}

func TestAnswerStringsOmissions(t *testing.T) {
	g := sampleGeolocation()
	g.Loc.Region = ""
	g.Learned = true
	got := AnswerStrings(g)
	for _, s := range got {
		if s == "region=" {
			t.Error("empty region not omitted")
		}
	}
	if got[len(got)-1] != "learned=true" {
		t.Errorf("learned flag missing: %v", got)
	}
	if AnswerStrings(nil) != nil {
		t.Error("nil geolocation should yield no strings")
	}
	if AnswerStrings(&core.Geolocation{}) != nil {
		t.Error("geolocation without location should yield no strings")
	}
}

func TestPTRTarget(t *testing.T) {
	cases := []struct {
		mutate func(*core.Geolocation)
		want   string
	}{
		{func(g *core.Geolocation) {}, "ashburn.va.us.geo.invalid."},
		{func(g *core.Geolocation) { g.Loc.Region = "" }, "ashburn.us.geo.invalid."},
		{func(g *core.Geolocation) { g.Loc.City = "new york" }, "new-york.va.us.geo.invalid."},
		{func(g *core.Geolocation) { g.Loc.City = "st.louis" }, "st-louis.va.us.geo.invalid."},
	}
	for _, tc := range cases {
		g := sampleGeolocation()
		tc.mutate(g)
		if got := PTRTarget(g); got != tc.want {
			t.Errorf("PTRTarget = %q, want %q", got, tc.want)
		}
	}
	if PTRTarget(nil) != "" {
		t.Error("nil geolocation should yield empty target")
	}
}
