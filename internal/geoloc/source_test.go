package geoloc

import (
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hoiho/internal/core"
)

func TestSourceKindContract(t *testing.T) {
	cases := []struct {
		name    string
		src     Source
		kind    Kind
		wantErr string
	}{
		{"none", Source{}, FromNone, "is required"},
		{"snapshot", Source{Snapshot: "ix.snap"}, FromSnapshot, ""},
		{"nc", Source{NC: "nc.txt"}, FromConventions, ""},
		{"corpus", Source{Corpus: "dir"}, FromCorpus, ""},
		{"snapshot+nc", Source{Snapshot: "a", NC: "b"}, FromNone, "mutually exclusive"},
		{"nc+corpus", Source{NC: "b", Corpus: "c"}, FromNone, "mutually exclusive"},
		{"all three", Source{Snapshot: "a", NC: "b", Corpus: "c"}, FromNone, "mutually exclusive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			kind, err := tc.src.Kind()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatal(err)
				}
				if kind != tc.kind {
					t.Fatalf("kind = %v, want %v", kind, tc.kind)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestSourceRegisterFlags(t *testing.T) {
	src := &Source{Corpus: "default-corpus", Workers: 3}
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	src.RegisterFlags(fs)
	if err := fs.Parse([]string{"-snapshot", "ix.snap", "-corpus", "", "-no-learn"}); err != nil {
		t.Fatal(err)
	}
	if src.Snapshot != "ix.snap" || src.Corpus != "" || !src.NoLearn || src.Workers != 3 {
		t.Fatalf("parsed source = %+v", src)
	}
	kind, err := src.Kind()
	if err != nil || kind != FromSnapshot {
		t.Fatalf("kind = %v, %v", kind, err)
	}
	if got := src.Describe(); got != "snapshot ix.snap" {
		t.Fatalf("Describe() = %q", got)
	}
	cfg := src.CoreConfig(nil)
	if cfg.LearnHints || cfg.Workers != 3 {
		t.Fatalf("CoreConfig: LearnHints=%v Workers=%d", cfg.LearnHints, cfg.Workers)
	}
}

// TestSourceResolveEquivalence resolves the same learned conventions
// through all three input kinds and checks the compiled indexes serve
// identically — the property that makes -snapshot/-nc/-corpus
// interchangeable across the commands.
func TestSourceResolveEquivalence(t *testing.T) {
	res, dict, list := learnFixture(t)
	opts := Options{Dict: dict, PSL: list, CacheSize: -1}
	direct, err := New(res, opts)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ncPath := filepath.Join(dir, "conventions.txt")
	ncFile, err := os.Create(ncPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.WriteConventions(ncFile, res); err != nil {
		t.Fatal(err)
	}
	if err := ncFile.Close(); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, "index.snap")
	snapFile, err := os.Create(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := Save(snapFile, res, nil); err != nil {
		t.Fatal(err)
	}
	if err := snapFile.Close(); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		src  Source
	}{
		{"nc", Source{NC: ncPath}},
		{"snapshot", Source{Snapshot: snapPath}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resolved, err := tc.src.Resolve(opts)
			if err != nil {
				t.Fatal(err)
			}
			if resolved.Inputs != nil {
				t.Error("non-corpus resolve should not carry corpus inputs")
			}
			if resolved.Index.Len() != direct.Len() {
				t.Fatalf("index size %d, want %d", resolved.Index.Len(), direct.Len())
			}
			for _, host := range probeHosts {
				if d, g := lookupKey(direct, host), lookupKey(resolved.Index, host); d != g {
					t.Errorf("lookup %q diverged: direct %s, %s %s", host, d, tc.name, g)
				}
			}
		})
	}
}

func TestSourceResolveCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("golden pipeline run in -short mode")
	}
	src := Source{Corpus: filepath.Join("..", "..", "testdata", "golden")}
	resolved, err := src.Resolve(Options{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	if resolved.Inputs == nil {
		t.Fatal("corpus resolve must carry the loaded inputs")
	}
	if resolved.Index.Len() == 0 || len(resolved.Result.NCs) == 0 {
		t.Fatal("corpus resolve produced an empty index")
	}
}

func TestSourceResolveErrors(t *testing.T) {
	if _, err := (&Source{}).Resolve(Options{}); err == nil {
		t.Error("resolving an unset source should fail")
	}
	if _, err := (&Source{Snapshot: "/nonexistent.snap"}).Resolve(Options{}); err == nil {
		t.Error("resolving a missing snapshot should fail")
	}
	// A conventions file fed to -snapshot must fail with the typed
	// bad-magic error, wrapped with the path for the CLI message.
	dir := t.TempDir()
	ncPath := filepath.Join(dir, "nc.txt")
	if err := os.WriteFile(ncPath, []byte("# not a snapshot\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := (&Source{Snapshot: ncPath}).Resolve(Options{})
	if !errors.Is(err, ErrSnapshotMagic) {
		t.Errorf("got %v, want errors.Is(err, ErrSnapshotMagic)", err)
	}
}
