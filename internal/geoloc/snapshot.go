package geoloc

// Compiled-index snapshots: a versioned, checksummed on-disk format for
// the learned conventions behind an Index, so geoserve cold starts and
// reloads never pay the learning pipeline again (the paper's
// learn-once/serve-many shape; see DESIGN.md §10 for the wire layout).
//
// Layout, all integers little-endian:
//
//	magic   [8]byte  "HOIHOSNP"
//	version uint32   SnapshotVersion
//	metaLen uint32   length of the JSON metadata header
//	meta    []byte   {"conventions":N,"shards":K,...}
//	shards  uint32   section count K
//	K sections:
//	    payloadLen uint32
//	    payloadCRC uint32   IEEE CRC-32 of the payload bytes
//	    payload    []byte   published-conventions text for the shard
//	trailer uint32   IEEE CRC-32 of every preceding byte
//
// Conventions are sharded by FNV-1a suffix hash so ReadSnapshot can
// parse sections concurrently; within a shard the payload is the same
// line format core.WriteConventions publishes, which keeps the snapshot
// debuggable with `strings` and reuses the battle-tested parser. The
// per-section CRC localizes corruption to a shard; the trailer CRC
// additionally covers the header and framing.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"hoiho/internal/core"
	"hoiho/internal/obs"
)

// SnapshotVersion is the format version this build writes and the only
// version it reads. Bump on any incompatible layout change; readers
// reject other versions with ErrSnapshotVersion rather than guessing.
const SnapshotVersion = 1

// snapshotShards is the section count written by Save. Readers take the
// count from the file, so this can change without a version bump.
const snapshotShards = 8

var snapshotMagic = [8]byte{'H', 'O', 'I', 'H', 'O', 'S', 'N', 'P'}

// Snapshot read failures are distinguishable with errors.Is so callers
// (and the corruption tests) can tell an operational problem (truncated
// copy, bit rot) from a compatibility one (foreign file, version skew).
var (
	// ErrSnapshotEmpty reports a zero-length input.
	ErrSnapshotEmpty = errors.New("geoloc: snapshot: empty file")
	// ErrSnapshotMagic reports an input that is not a snapshot at all.
	ErrSnapshotMagic = errors.New("geoloc: snapshot: bad magic (not a snapshot file)")
	// ErrSnapshotVersion reports a snapshot from an incompatible format
	// version.
	ErrSnapshotVersion = errors.New("geoloc: snapshot: unsupported format version")
	// ErrSnapshotTruncated reports an input that ends mid-structure.
	ErrSnapshotTruncated = errors.New("geoloc: snapshot: truncated")
	// ErrSnapshotChecksum reports a section or trailer CRC mismatch.
	ErrSnapshotChecksum = errors.New("geoloc: snapshot: checksum mismatch")
)

// snapshotMeta is the JSON metadata header. The Result-level totals ride
// along because they are derived from the training corpus, which a
// snapshot consumer does not have.
type snapshotMeta struct {
	Conventions         int `json:"conventions"`
	Shards              int `json:"shards"`
	SuffixesWithGeohint int `json:"suffixes_with_geohint,omitempty"`
	RoutersWithGeohint  int `json:"routers_with_geohint,omitempty"`
	RoutersGeolocated   int `json:"routers_geolocated,omitempty"`
}

// Save writes res as a compiled-index snapshot. The output is
// deterministic for a given Result (no timestamps; shard payloads are
// sorted), so identical conventions produce byte-identical snapshots.
// tracer may be nil; when set, a "snapshot-save" span records convention
// and byte counts.
func Save(w io.Writer, res *core.Result, tracer *obs.Tracer) error {
	if res == nil {
		return fmt.Errorf("geoloc: snapshot: nil result")
	}
	sp := tracer.Start("snapshot-save")
	defer sp.End()

	shards := make([]*core.Result, snapshotShards)
	for i := range shards {
		shards[i] = &core.Result{NCs: make(map[string]*core.NamingConvention)}
	}
	for suffix, nc := range res.NCs {
		shards[shardOf(suffix)].NCs[suffix] = nc
	}

	var out bytes.Buffer
	out.Write(snapshotMagic[:])
	writeU32(&out, SnapshotVersion)
	meta, err := json.Marshal(snapshotMeta{
		Conventions:         len(res.NCs),
		Shards:              snapshotShards,
		SuffixesWithGeohint: res.SuffixesWithGeohint,
		RoutersWithGeohint:  res.RoutersWithGeohint,
		RoutersGeolocated:   res.RoutersGeolocated,
	})
	if err != nil {
		return err
	}
	writeU32(&out, uint32(len(meta)))
	out.Write(meta)
	writeU32(&out, snapshotShards)
	for _, shard := range shards {
		var payload bytes.Buffer
		if err := core.WriteConventions(&payload, shard); err != nil {
			return err
		}
		writeU32(&out, uint32(payload.Len()))
		writeU32(&out, crc32.ChecksumIEEE(payload.Bytes()))
		out.Write(payload.Bytes())
	}
	writeU32(&out, crc32.ChecksumIEEE(out.Bytes()))

	sp.Count("conventions", int64(len(res.NCs)))
	sp.Count("shards", snapshotShards)
	sp.Count("bytes", int64(out.Len()))
	_, err = w.Write(out.Bytes())
	return err
}

// ReadSnapshot parses a snapshot back into a Result, verifying the
// framing, every section CRC, and the trailer CRC, and decoding the
// suffix shards concurrently. tracer may be nil; when set, a
// "snapshot-load" span records section, convention, and byte counts.
func ReadSnapshot(r io.Reader, tracer *obs.Tracer) (*core.Result, error) {
	sp := tracer.Start("snapshot-load")
	defer sp.End()

	cr := &crcReader{r: r}
	var magic [8]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		if errors.Is(err, io.EOF) && cr.n == 0 {
			return nil, ErrSnapshotEmpty
		}
		return nil, ErrSnapshotTruncated
	}
	if magic != snapshotMagic {
		return nil, ErrSnapshotMagic
	}
	version, err := readU32(cr)
	if err != nil {
		return nil, ErrSnapshotTruncated
	}
	if version != SnapshotVersion {
		return nil, fmt.Errorf("%w: file has v%d, this build reads v%d",
			ErrSnapshotVersion, version, SnapshotVersion)
	}
	metaLen, err := readU32(cr)
	if err != nil {
		return nil, ErrSnapshotTruncated
	}
	metaBytes := make([]byte, metaLen)
	if _, err := io.ReadFull(cr, metaBytes); err != nil {
		return nil, ErrSnapshotTruncated
	}
	var meta snapshotMeta
	if err := json.Unmarshal(metaBytes, &meta); err != nil {
		return nil, fmt.Errorf("geoloc: snapshot: bad metadata header: %w", err)
	}
	nShards, err := readU32(cr)
	if err != nil {
		return nil, ErrSnapshotTruncated
	}

	payloads := make([][]byte, nShards)
	for i := range payloads {
		payloadLen, err := readU32(cr)
		if err != nil {
			return nil, ErrSnapshotTruncated
		}
		wantCRC, err := readU32(cr)
		if err != nil {
			return nil, ErrSnapshotTruncated
		}
		payload := make([]byte, payloadLen)
		if _, err := io.ReadFull(cr, payload); err != nil {
			return nil, ErrSnapshotTruncated
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			return nil, fmt.Errorf("%w: section %d", ErrSnapshotChecksum, i)
		}
		payloads[i] = payload
	}
	bodyCRC := cr.crc
	trailer, err := readU32(r)
	if err != nil {
		return nil, ErrSnapshotTruncated
	}
	if trailer != bodyCRC {
		return nil, fmt.Errorf("%w: trailer", ErrSnapshotChecksum)
	}

	// Sections hold disjoint suffix sets, so each shard parses
	// independently and the merge below is order-insensitive.
	results := make([]*core.Result, len(payloads))
	errs := make([]error, len(payloads))
	var wg sync.WaitGroup
	for i, payload := range payloads {
		wg.Add(1)
		go func(i int, payload []byte) {
			defer wg.Done()
			results[i], errs[i] = core.ReadConventions(bytes.NewReader(payload))
		}(i, payload)
	}
	wg.Wait()
	res := &core.Result{
		NCs:                 make(map[string]*core.NamingConvention, meta.Conventions),
		SuffixesWithGeohint: meta.SuffixesWithGeohint,
		RoutersWithGeohint:  meta.RoutersWithGeohint,
		RoutersGeolocated:   meta.RoutersGeolocated,
	}
	for i, shard := range results {
		if errs[i] != nil {
			return nil, fmt.Errorf("geoloc: snapshot: section %d: %w", i, errs[i])
		}
		for suffix, nc := range shard.NCs {
			if _, dup := res.NCs[suffix]; dup {
				return nil, fmt.Errorf("geoloc: snapshot: duplicate suffix %s across sections", suffix)
			}
			res.NCs[suffix] = nc
		}
	}
	if len(res.NCs) != meta.Conventions {
		return nil, fmt.Errorf("geoloc: snapshot: header promises %d conventions, sections hold %d",
			meta.Conventions, len(res.NCs))
	}
	sp.Count("sections", int64(nShards))
	sp.Count("conventions", int64(len(res.NCs)))
	sp.Count("bytes", cr.n+4)
	return res, nil
}

// Load reads a snapshot and compiles it into a serving Index — the
// zero-learning cold-start path. Options are applied exactly as in New
// (opts.Tracer also spans the snapshot parse itself).
func Load(r io.Reader, opts Options) (*Index, error) {
	res, err := ReadSnapshot(r, opts.Tracer)
	if err != nil {
		return nil, err
	}
	return New(res, opts)
}

// shardOf assigns a suffix to a section: FNV-1a over the suffix bytes,
// reduced mod the shard count.
func shardOf(suffix string) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(suffix); i++ {
		h ^= uint32(suffix[i])
		h *= prime32
	}
	return int(h % snapshotShards)
}

// crcReader tracks the running CRC-32 and byte count of everything read
// through it, so the trailer can be verified without buffering the file.
type crcReader struct {
	r   io.Reader
	crc uint32
	n   int64
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	c.n += int64(n)
	return n, err
}

func writeU32(w *bytes.Buffer, v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	w.Write(buf[:])
}

func readU32(r io.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}
