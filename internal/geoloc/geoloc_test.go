package geoloc

import (
	"bytes"
	"fmt"
	"net/netip"
	"sync"
	"testing"

	"hoiho/internal/core"
	"hoiho/internal/geo"
	"hoiho/internal/geodict"
	"hoiho/internal/itdk"
	"hoiho/internal/psl"
	"hoiho/internal/rex"
	"hoiho/internal/rtt"
)

// The serving tests run the real pipeline over a hand-built corpus (the
// same shape internal/core's fixture uses: honest deterministic RTTs of
// min-of-light * 1.25 + 1ms) so the Index is exercised against a live
// Result with a stage-4 learned geohint, not a synthetic stand-in.

type fixture struct {
	dict   *geodict.Dictionary
	list   *psl.List
	corpus *itdk.Corpus
	matrix *rtt.Matrix
	nextIP int
}

func newTestFixture(t testing.TB) *fixture {
	t.Helper()
	dict := geodict.MustDefault()
	var vps []*rtt.VP
	for _, v := range []struct{ name, city, region, country string }{
		{"cgs-us", "college park", "md", "us"},
		{"lon-gb", "london", "", "gb"},
		{"zrh-ch", "zurich", "zh", "ch"},
		{"tyo-jp", "tokyo", "", "jp"},
		{"sjc-us", "san jose", "ca", "us"},
	} {
		loc := placeIn(t, dict, v.city, v.region, v.country)
		vps = append(vps, &rtt.VP{Name: v.name, City: v.city, Country: v.country, Pos: loc.Pos})
	}
	return &fixture{
		dict:   dict,
		list:   psl.MustDefault(),
		corpus: itdk.NewCorpus("test", false),
		matrix: rtt.NewMatrix(vps),
	}
}

func placeIn(t testing.TB, d *geodict.Dictionary, city, region, country string) *geodict.Location {
	t.Helper()
	for _, loc := range d.Place(city) {
		if loc.Region == region && loc.Country == country {
			return loc
		}
	}
	t.Fatalf("place %s/%s/%s not in dictionary", city, region, country)
	return nil
}

func (f *fixture) addRouter(t testing.TB, id string, loc *geodict.Location, hostname string) {
	t.Helper()
	f.nextIP++
	addr := netip.MustParseAddr(fmt.Sprintf("192.0.2.%d", f.nextIP%250+1))
	r := &itdk.Router{
		ID:         id,
		Interfaces: []itdk.Interface{{Addr: addr, Hostname: hostname}},
		Truth: &itdk.GroundTruth{
			City: loc.City, Region: loc.Region, Country: loc.Country, Pos: loc.Pos,
		},
	}
	if err := f.corpus.Add(r); err != nil {
		t.Fatal(err)
	}
	for _, vp := range f.matrix.VPs() {
		ms := geo.MinRTTms(vp.Pos, loc.Pos)*1.25 + 1.0
		if err := f.matrix.SetPing(id, vp.Name, rtt.Sample{RTTms: ms, Method: rtt.ICMP}); err != nil {
			t.Fatal(err)
		}
	}
}

var learned struct {
	once sync.Once
	res  *core.Result
	dict *geodict.Dictionary
	list *psl.List
	err  error
}

// learnFixture runs the pipeline once per test binary: an IATA
// convention with a learned "ash" geohint on he.net, and a place-name
// convention on alter.net.
func learnFixture(t testing.TB) (*core.Result, *geodict.Dictionary, *psl.List) {
	t.Helper()
	learned.once.Do(func() {
		f := newTestFixture(t)
		id := 0
		for _, c := range []struct {
			code                  string
			city, region, country string
			n                     int
		}{
			{"sjc", "san jose", "ca", "us", 3},
			{"fra", "frankfurt am main", "he", "de", 3},
			{"lhr", "london", "", "gb", 3},
			{"tyo", "tokyo", "", "jp", 3},
			{"ash", "ashburn", "va", "us", 4}, // custom hint, learned in stage 4
		} {
			loc := placeIn(t, f.dict, c.city, c.region, c.country)
			for i := 1; i <= c.n; i++ {
				id++
				f.addRouter(t, fmt.Sprintf("N%d", id), loc,
					fmt.Sprintf("100ge%d-1.core%d.%s1.he.net", i, i, c.code))
			}
		}
		for i, city := range []struct{ city, region, country string }{
			{"munich", "by", "de"}, {"stuttgart", "bw", "de"},
			{"dresden", "sn", "de"}, {"hamburg", "hh", "de"},
		} {
			loc := placeIn(t, f.dict, city.city, city.region, city.country)
			f.addRouter(t, fmt.Sprintf("M%d", i), loc,
				fmt.Sprintf("pos-%d.%s%d.de.alter.net", i, geodict.NormalizeName(loc.City), i))
		}
		learned.dict, learned.list = f.dict, f.list
		learned.res, learned.err = core.Run(
			core.Inputs{Dict: f.dict, PSL: f.list, Corpus: f.corpus, RTT: f.matrix},
			core.DefaultConfig())
	})
	if learned.err != nil {
		t.Fatal(learned.err)
	}
	if learned.res.NCs["he.net"] == nil || len(learned.res.NCs["he.net"].Learned) == 0 {
		t.Fatal("fixture did not learn the he.net convention with a custom hint")
	}
	return learned.res, learned.dict, learned.list
}

func newTestIndex(t testing.TB, opts Options) *Index {
	t.Helper()
	res, dict, list := learnFixture(t)
	opts.Dict, opts.PSL = dict, list
	ix, err := New(res, opts)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// probeHosts cover every lookup outcome: seen hostnames, unseen
// hostnames under a learned convention (including the learned "ash"
// hint), a second suffix, regex misses, and unknown suffixes.
var probeHosts = []string{
	"100ge1-1.core1.sjc1.he.net",
	"100ge3-1.core3.lhr1.he.net",
	"te0-0-0.core1.sjc1.he.net",            // unseen, dictionary hint
	"gcr-company.ve42.core9.ash1.he.net",   // unseen, learned hint
	"GCR-Company.VE42.Core9.ASH1.HE.NET.",  // case + root dot
	"pos-0.munich0.de.alter.net",           // second suffix
	"pos-9.hamburg77.de.alter.net",         // unseen under alter.net
	"totally-unconventional.he.net",        // no regex match
	"core1.sjc1.example-no-convention.com", // unknown suffix
	"100ge1-1.core1.xxq1.he.net",           // matches but not in dictionary
	"",
}

func TestLookupLiveResult(t *testing.T) {
	ix := newTestIndex(t, Options{})
	g, ok := ix.Lookup("gcr-company.ve42.core9.ash1.he.net")
	if !ok {
		t.Fatal("lookup of learned-hint hostname failed")
	}
	if g.Loc.City != "ashburn" || !g.Learned {
		t.Errorf("ash1 = %+v, want learned ashburn", g)
	}
	g, ok = ix.Lookup("te0-0-0.core1.sjc1.he.net")
	if !ok || g.Loc.City != "san jose" || g.Learned {
		t.Errorf("sjc1 = %+v ok=%v, want dictionary san jose", g, ok)
	}
	g, ok = ix.Lookup("pos-9.hamburg77.de.alter.net")
	if !ok || g.Loc.City != "hamburg" {
		t.Errorf("hamburg = %+v ok=%v", g, ok)
	}
	if _, ok := ix.Lookup("core1.sjc1.example-no-convention.com"); ok {
		t.Error("unknown suffix should not resolve")
	}
}

func TestLookupNormalizesHostnames(t *testing.T) {
	ix := newTestIndex(t, Options{})
	g, ok := ix.Lookup("GCR-Company.VE42.Core9.ASH1.HE.NET.")
	if !ok || g.Loc.City != "ashburn" {
		t.Fatalf("uppercase+root-dot lookup = %+v ok=%v", g, ok)
	}
	if g.Hostname != "gcr-company.ve42.core9.ash1.he.net" {
		t.Errorf("Hostname = %q, want normalized", g.Hostname)
	}
}

// TestIndexMatchesGeolocate pins the contract that the compiled index
// is a pure optimization of the per-call core.Geolocate path.
func TestIndexMatchesGeolocate(t *testing.T) {
	res, dict, list := learnFixture(t)
	ix := newTestIndex(t, Options{})
	for _, host := range probeHosts {
		want, wantOK := core.Geolocate(res.NCs[ix.Suffix(host)], dict, normalize(host))
		got, gotOK := ix.Lookup(host)
		if wantOK != gotOK {
			t.Errorf("%s: index ok=%v, Geolocate ok=%v", host, gotOK, wantOK)
			continue
		}
		if !gotOK {
			continue
		}
		if got.Loc.Key() != want.Loc.Key() || got.Learned != want.Learned ||
			got.Hint != want.Hint || got.Type != want.Type || got.Suffix != want.Suffix {
			t.Errorf("%s: index %+v != Geolocate %+v", host, got, want)
		}
	}
	_ = list
}

// TestRoundTripServing is the conventions round-trip under serving: an
// Index built from ReadConventions(WriteConventions(res)) geolocates
// identically to one built from the live Result, including learned-hint
// overlays.
func TestRoundTripServing(t *testing.T) {
	res, dict, list := learnFixture(t)
	var buf bytes.Buffer
	if err := core.WriteConventions(&buf, res); err != nil {
		t.Fatal(err)
	}
	res2, err := core.ReadConventions(&buf)
	if err != nil {
		t.Fatal(err)
	}
	live := newTestIndex(t, Options{})
	rt, err := New(res2, Options{Dict: dict, PSL: list})
	if err != nil {
		t.Fatal(err)
	}
	if live.Len() != rt.Len() {
		t.Fatalf("live index has %d conventions, round-tripped %d", live.Len(), rt.Len())
	}
	for _, host := range probeHosts {
		a, aok := live.Lookup(host)
		b, bok := rt.Lookup(host)
		if aok != bok {
			t.Errorf("%s: live ok=%v, round-trip ok=%v", host, aok, bok)
			continue
		}
		if !aok {
			continue
		}
		if a.Loc.Key() != b.Loc.Key() || a.Learned != b.Learned ||
			a.Hint != b.Hint || a.Type != b.Type || a.Suffix != b.Suffix {
			t.Errorf("%s: live %+v != round-trip %+v", host, a, b)
		}
		if a.Learned != b.Learned {
			t.Errorf("%s: learned overlay lost in round-trip", host)
		}
	}
}

func TestLookupBatchOrderAndAlignment(t *testing.T) {
	ix := newTestIndex(t, Options{})
	out := ix.LookupBatch(probeHosts)
	if len(out) != len(probeHosts) {
		t.Fatalf("batch returned %d results for %d hostnames", len(out), len(probeHosts))
	}
	for i, host := range probeHosts {
		want, wantOK := ix.Lookup(host)
		if (out[i] != nil) != wantOK {
			t.Errorf("batch[%d] %s: got %v, want ok=%v", i, host, out[i], wantOK)
		}
		if out[i] != nil && out[i].Loc.Key() != want.Loc.Key() {
			t.Errorf("batch[%d] %s: %v != %v", i, host, out[i], want)
		}
	}
}

// TestLookupBatchConcurrent hammers a shared index from many goroutines
// — run under -race this is the serving concurrency contract.
func TestLookupBatchConcurrent(t *testing.T) {
	ix := newTestIndex(t, Options{CacheSize: 64}) // small cache forces eviction races
	const goroutines = 8
	iters := 60
	if testing.Short() {
		iters = 20
	}
	want := make(map[string]*core.Geolocation, len(probeHosts))
	for i, g := range ix.LookupBatch(probeHosts) {
		want[probeHosts[i]] = g
	}
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			// Each goroutine walks its own rotation so callers disagree
			// about cache access order.
			rot := seed % len(probeHosts)
			hosts := append(append([]string(nil), probeHosts[rot:]...), probeHosts[:rot]...)
			for i := 0; i < iters; i++ {
				for j, g := range ix.LookupBatch(hosts) {
					w := want[hosts[j]]
					if (g == nil) != (w == nil) {
						errs <- fmt.Sprintf("%s: concurrent ok=%v, want %v", hosts[j], g != nil, w != nil)
						return
					}
					if g != nil && g.Loc.Key() != w.Loc.Key() {
						errs <- fmt.Sprintf("%s: concurrent %v, want %v", hosts[j], g.Loc, w.Loc)
						return
					}
				}
			}
		}(g + 1)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

func TestCacheCountersAndBound(t *testing.T) {
	ix := newTestIndex(t, Options{CacheSize: cacheShards}) // one entry per shard
	host := "100ge1-1.core1.sjc1.he.net"
	ix.Lookup(host)
	ix.Lookup(host)
	ix.Lookup(host)
	st := ix.Stats()
	if st.Lookups != 3 || st.CacheMisses != 1 || st.CacheHits != 2 {
		t.Errorf("stats = %+v, want 3 lookups / 1 miss / 2 hits", st)
	}
	// Negative results are cached too.
	ix.Lookup("nope.example-no-convention.com")
	ix.Lookup("nope.example-no-convention.com")
	st = ix.Stats()
	if st.CacheHits != 3 {
		t.Errorf("negative result not cached: %+v", st)
	}
	// The cache stays bounded no matter how many distinct keys pass by.
	for i := 0; i < 40*cacheShards; i++ {
		ix.Lookup(fmt.Sprintf("100ge1-1.core1.sjc1.host%d.example.org", i))
	}
	if n := ix.cache.len(); n > cacheShards {
		t.Errorf("cache holds %d entries, bound is %d", n, cacheShards)
	}
}

func TestCacheDisabled(t *testing.T) {
	ix := newTestIndex(t, Options{CacheSize: -1})
	host := "100ge1-1.core1.sjc1.he.net"
	ix.Lookup(host)
	ix.Lookup(host)
	st := ix.Stats()
	if st.CacheHits != 0 || st.CacheMisses != 0 {
		t.Errorf("disabled cache still counting: %+v", st)
	}
	if st.Matched != 2 {
		t.Errorf("matched = %d, want 2", st.Matched)
	}
}

func TestStatsBySuffixAndClass(t *testing.T) {
	ix := newTestIndex(t, Options{CacheSize: -1})
	ix.Lookup("100ge1-1.core1.sjc1.he.net")
	ix.Lookup("100ge1-1.core1.sjc1.he.net")
	ix.Lookup("pos-0.munich0.de.alter.net")
	ix.Lookup("unmatched.example-no-convention.com")
	st := ix.Stats()
	if st.BySuffix["he.net"] != 2 || st.BySuffix["alter.net"] != 1 {
		t.Errorf("BySuffix = %v", st.BySuffix)
	}
	if st.Unmatched != 1 {
		t.Errorf("Unmatched = %d", st.Unmatched)
	}
	total := uint64(0)
	for _, n := range st.ByClass {
		total += n
	}
	if total != st.Matched {
		t.Errorf("ByClass sums to %d, Matched = %d", total, st.Matched)
	}
}

func TestUsableOnly(t *testing.T) {
	res, dict, list := learnFixture(t)
	all, err := New(res, Options{Dict: dict, PSL: list})
	if err != nil {
		t.Fatal(err)
	}
	usable, err := New(res, Options{Dict: dict, PSL: list, UsableOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(res.UsableNCs()); usable.Len() != want {
		t.Errorf("usable-only index has %d conventions, want %d", usable.Len(), want)
	}
	if all.Len() != len(res.NCs) {
		t.Errorf("full index has %d conventions, want %d", all.Len(), len(res.NCs))
	}
}

func TestSuffixesSortedAndConvention(t *testing.T) {
	ix := newTestIndex(t, Options{})
	suffixes := ix.Suffixes()
	for i := 1; i < len(suffixes); i++ {
		if suffixes[i-1] >= suffixes[i] {
			t.Fatalf("suffixes not sorted: %v", suffixes)
		}
	}
	if ix.Convention("he.net") == nil {
		t.Error("Convention(he.net) = nil")
	}
	if ix.Convention("example-no-convention.com") != nil {
		t.Error("Convention of unknown suffix should be nil")
	}
}

// TestNewRejectsUncompilableRegex: compilation failures surface at build
// time, never at request time.
func TestNewRejectsUncompilableRegex(t *testing.T) {
	// regexp rejects repeat counts above 1000, so this renders but does
	// not compile.
	bad := rex.New(geodict.HintIATA,
		rex.Component{Kind: rex.KindAlphaFixed, N: 100000, Capture: true, Role: rex.RoleHint})
	res := &core.Result{NCs: map[string]*core.NamingConvention{
		"bad.net": {Suffix: "bad.net", Regexes: []*rex.Regex{bad}},
	}}
	_, dict, list := learnFixture(t)
	if _, err := New(res, Options{Dict: dict, PSL: list}); err == nil {
		t.Fatal("New accepted a result with an uncompilable regex")
	}
}

func TestNewNilResult(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("New(nil) should error")
	}
}
