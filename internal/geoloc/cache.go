package geoloc

import (
	"container/list"
	"sync"

	"hoiho/internal/core"
)

// cache is a bounded LRU over lookup results, sharded by hostname hash
// so concurrent LookupBatch callers do not serialize on one mutex.
// Negative results are cached too (a nil Geolocation): traffic that
// repeatedly asks about hostnames without conventions is as common as
// traffic that repeats matching ones.
type cache struct {
	shards [cacheShards]shard
}

// cacheShards is fixed so shard selection is a mask; 16 keeps lock
// contention negligible at typical server parallelism.
const cacheShards = 16

type shard struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

type cacheEntry struct {
	key string
	g   *core.Geolocation
}

func newCache(capacity int) *cache {
	per := (capacity + cacheShards - 1) / cacheShards
	if per < 1 {
		per = 1
	}
	c := &cache{}
	for i := range c.shards {
		c.shards[i].cap = per
		c.shards[i].entries = make(map[string]*list.Element, per)
		c.shards[i].order = list.New()
	}
	return c
}

func (c *cache) shard(key string) *shard {
	return &c.shards[fnv32a(key)&(cacheShards-1)]
}

// get returns the cached result and whether the key was present; a
// (nil, true) return is a cached negative result.
func (c *cache) get(key string) (*core.Geolocation, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		return nil, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*cacheEntry).g, true
}

func (c *cache) put(key string, g *core.Geolocation) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		el.Value.(*cacheEntry).g = g
		s.order.MoveToFront(el)
		return
	}
	s.entries[key] = s.order.PushFront(&cacheEntry{key: key, g: g})
	if s.order.Len() > s.cap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.entries, oldest.Value.(*cacheEntry).key)
	}
}

// len returns the number of cached entries across all shards.
func (c *cache) len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// fnv32a is the 32-bit FNV-1a hash, inlined to avoid per-key allocation
// through hash/fnv's interface.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
