package geoloc

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestExplainMirrorsLookup: for every probe hostname, the explanation's
// verdict and answer agree exactly with Lookup — Explain is the same
// decision procedure with the trace recorded, never a second opinion.
func TestExplainMirrorsLookup(t *testing.T) {
	ix := newTestIndex(t, Options{})
	for _, host := range probeHosts {
		g, ok := ix.Lookup(host)
		ex := ix.Explain(host)
		if ex.Located != ok {
			t.Errorf("%s: Explain located=%v, Lookup ok=%v", host, ex.Located, ok)
			continue
		}
		if !ok {
			continue
		}
		if ex.Location.City != g.Loc.City || ex.Location.Region != g.Loc.Region ||
			ex.Location.Country != g.Loc.Country {
			t.Errorf("%s: Explain %+v != Lookup %+v", host, ex.Location, g.Loc)
		}
		if ex.Hint != g.Hint || ex.HintType != g.Type.String() || ex.Learned != g.Learned ||
			ex.Suffix != g.Suffix {
			t.Errorf("%s: Explain answer fields diverge from Lookup", host)
		}
	}
}

// TestExplainStages checks the trace content for each resolution path.
func TestExplainStages(t *testing.T) {
	ix := newTestIndex(t, Options{})

	// Learned overlay, with normalization visible.
	ex := ix.Explain("GCR-Company.VE42.Core9.ASH1.HE.NET.")
	if ex.Normalized != "gcr-company.ve42.core9.ash1.he.net" {
		t.Errorf("normalized = %q", ex.Normalized)
	}
	if !ex.Indexed || ex.Convention == nil || ex.Convention.Learned == 0 {
		t.Fatalf("he.net convention summary missing: %+v", ex.Convention)
	}
	last := ex.Steps[len(ex.Steps)-1]
	if !last.Matched || last.Resolution != ResolutionLearned || last.Hint != "ash" {
		t.Errorf("learned step = %+v", last)
	}
	if last.LearnedTP == 0 {
		t.Error("learned step carries no congruence evidence")
	}
	if !ex.Learned || ex.Location.City != "ashburn" {
		t.Errorf("verdict = learned=%v loc=%+v", ex.Learned, ex.Location)
	}

	// Dictionary resolution.
	ex = ix.Explain("te0-0-0.core1.sjc1.he.net")
	last = ex.Steps[len(ex.Steps)-1]
	if last.Resolution != ResolutionDictionary || last.Candidates == 0 {
		t.Errorf("dictionary step = %+v", last)
	}
	if ex.Learned || ex.Location.City != "san jose" {
		t.Errorf("verdict = %+v", ex.Location)
	}

	// Matched but unresolved: terminal miss, not fall-through.
	ex = ix.Explain("100ge1-1.core1.xxq1.he.net")
	if ex.Located {
		t.Fatal("unresolvable extraction located")
	}
	last = ex.Steps[len(ex.Steps)-1]
	if !last.Matched || last.Resolution != ResolutionUnresolved {
		t.Errorf("unresolved step = %+v", last)
	}

	// No regex matched: every step present, none matched.
	ex = ix.Explain("totally-unconventional.he.net")
	if ex.Located || len(ex.Steps) != ex.Convention.Regexes {
		t.Errorf("miss trace has %d steps for %d regexes, located=%v",
			len(ex.Steps), ex.Convention.Regexes, ex.Located)
	}
	for _, st := range ex.Steps {
		if st.Matched {
			t.Errorf("step claims match on unmatched hostname: %+v", st)
		}
	}

	// Unknown suffix: trace ends at dispatch.
	ex = ix.Explain("core1.sjc1.example-no-convention.com")
	if ex.Indexed || ex.Convention != nil || len(ex.Steps) != 0 || ex.Located {
		t.Errorf("unknown-suffix trace = %+v", ex)
	}
}

// TestExplainBypassesServingState: explanations leave the cache and the
// Stats counters untouched, and repeated explanations are identical.
func TestExplainBypassesServingState(t *testing.T) {
	ix := newTestIndex(t, Options{})
	before := ix.Stats()
	a := ix.Explain("100ge1-1.core1.sjc1.he.net")
	b := ix.Explain("100ge1-1.core1.sjc1.he.net")
	after := ix.Stats()
	if before.Lookups != after.Lookups || before.Matched != after.Matched ||
		before.CacheHits != after.CacheHits || before.CacheMisses != after.CacheMisses {
		t.Errorf("Explain moved counters: %+v -> %+v", before, after)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Errorf("explanations differ across runs:\n%s\n%s", aj, bj)
	}
	if a.Text() != b.Text() {
		t.Error("text renderings differ across runs")
	}
}

// TestExplainText spot-checks the text rendering's landmark lines.
func TestExplainText(t *testing.T) {
	ix := newTestIndex(t, Options{})
	text := ix.Explain("gcr-company.ve42.core9.ash1.he.net").Text()
	for _, want := range []string{
		"hostname:   gcr-company.ve42.core9.ash1.he.net",
		"suffix:     he.net",
		"learned overlay: Ashburn, VA, US",
		"verdict:    ashburn, va, us",
		"via learned-overlay",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text missing %q:\n%s", want, text)
		}
	}
	text = ix.Explain("nope.example-no-convention.com").Text()
	if !strings.Contains(text, "no convention indexed") {
		t.Errorf("unknown-suffix text:\n%s", text)
	}
}
