package geoloc

import (
	"fmt"
	"testing"

	"hoiho/internal/core"
)

// sameShardKeys generates n distinct keys that all hash into shard 0,
// so per-shard LRU behavior can be observed deterministically.
func sameShardKeys(n int) []string {
	var keys []string
	for i := 0; len(keys) < n; i++ {
		k := fmt.Sprintf("router-%d.example.net", i)
		if fnv32a(k)&(cacheShards-1) == 0 {
			keys = append(keys, k)
		}
	}
	return keys
}

func TestCacheShardEvictionOrder(t *testing.T) {
	// Capacity cacheShards*2 gives every shard room for exactly two
	// entries; three same-shard keys must evict in LRU order.
	c := newCache(cacheShards * 2)
	keys := sameShardKeys(3)
	g := make([]*core.Geolocation, 3)
	for i := range g {
		g[i] = &core.Geolocation{Hostname: keys[i]}
		c.put(keys[i], g[i])
	}
	// keys[0] is the least recently used and must be gone.
	if _, ok := c.get(keys[0]); ok {
		t.Fatalf("oldest entry %q survived eviction", keys[0])
	}
	for i := 1; i < 3; i++ {
		got, ok := c.get(keys[i])
		if !ok || got != g[i] {
			t.Fatalf("entry %q missing after eviction of older key", keys[i])
		}
	}
}

func TestCacheGetRefreshesRecency(t *testing.T) {
	c := newCache(cacheShards * 2)
	keys := sameShardKeys(3)
	c.put(keys[0], &core.Geolocation{Hostname: keys[0]})
	c.put(keys[1], &core.Geolocation{Hostname: keys[1]})
	// Touch keys[0] so keys[1] becomes the LRU victim.
	if _, ok := c.get(keys[0]); !ok {
		t.Fatal("warm entry missing")
	}
	c.put(keys[2], &core.Geolocation{Hostname: keys[2]})
	if _, ok := c.get(keys[1]); ok {
		t.Fatalf("LRU entry %q survived; get did not refresh recency", keys[1])
	}
	if _, ok := c.get(keys[0]); !ok {
		t.Fatalf("recently used entry %q was evicted", keys[0])
	}
}

func TestCachePutUpdatesInPlace(t *testing.T) {
	c := newCache(cacheShards)
	keys := sameShardKeys(1)
	old := &core.Geolocation{Hostname: keys[0], Hint: "old"}
	replacement := &core.Geolocation{Hostname: keys[0], Hint: "new"}
	c.put(keys[0], old)
	c.put(keys[0], replacement)
	if c.len() != 1 {
		t.Fatalf("len = %d after double put of one key, want 1", c.len())
	}
	got, ok := c.get(keys[0])
	if !ok || got != replacement {
		t.Fatalf("get = %v, want the replacement entry", got)
	}
}

func TestCacheNegativeEntry(t *testing.T) {
	c := newCache(cacheShards)
	keys := sameShardKeys(2)
	c.put(keys[0], nil)
	got, ok := c.get(keys[0])
	if !ok {
		t.Fatal("cached negative entry not found")
	}
	if got != nil {
		t.Fatalf("negative entry returned %v, want nil", got)
	}
	if _, ok := c.get(keys[1]); ok {
		t.Fatal("missing key reported present")
	}
}

func TestCacheLenAcrossShards(t *testing.T) {
	c := newCache(cacheShards * 4)
	for i := 0; i < cacheShards*4; i++ {
		c.put(fmt.Sprintf("host%d.example.net", i), nil)
	}
	// Hashing spreads keys unevenly, so some shards may have evicted;
	// the total can never exceed the configured bound.
	if n := c.len(); n == 0 || n > cacheShards*4 {
		t.Fatalf("len = %d, want within (0, %d]", n, cacheShards*4)
	}
}

// TestNegativeCachingStats pins the Stats accounting for the negative
// path: a hostname with no matching convention is cached as a nil
// entry, so the second lookup is a cache hit that still counts as
// unmatched.
func TestNegativeCachingStats(t *testing.T) {
	ix := newTestIndex(t, Options{CacheSize: 64})
	const miss = "totally.unconventional.example"
	for i := 0; i < 3; i++ {
		if g, ok := ix.Lookup(miss); ok || g != nil {
			t.Fatalf("lookup %d of %q = (%v, %v), want (nil, false)", i, miss, g, ok)
		}
	}
	s := ix.Stats()
	if s.Lookups != 3 {
		t.Fatalf("Lookups = %d, want 3", s.Lookups)
	}
	if s.CacheMisses != 1 {
		t.Fatalf("CacheMisses = %d, want 1 (only the first lookup runs the regexes)", s.CacheMisses)
	}
	if s.CacheHits != 2 {
		t.Fatalf("CacheHits = %d, want 2 (negative entries are cached)", s.CacheHits)
	}
	if s.Unmatched != 3 {
		t.Fatalf("Unmatched = %d, want 3 (a cached negative still counts unmatched)", s.Unmatched)
	}
	if s.Matched != 0 {
		t.Fatalf("Matched = %d, want 0", s.Matched)
	}
}

// TestEvictionReloadsThroughLocate confirms an evicted entry is
// recomputed, not lost: overflow the resolved hostname's shard (one
// entry per shard at this cache size), then re-look it up — that must
// be a cache miss that still resolves identically.
func TestEvictionReloadsThroughLocate(t *testing.T) {
	ix := newTestIndex(t, Options{CacheSize: cacheShards}) // one entry per shard
	const host = "te0-0-0.core1.sjc1.he.net"
	first, ok := ix.Lookup(host)
	if !ok {
		t.Fatal("fixture hostname did not resolve")
	}
	// Drive a filler lookup through the same shard to evict host; the
	// filler's negative result occupies the shard's single slot.
	target := fnv32a(host) & (cacheShards - 1)
	for i := 0; ; i++ {
		k := fmt.Sprintf("filler-%d.example.net", i)
		if fnv32a(k)&(cacheShards-1) == target {
			ix.Lookup(k)
			break
		}
	}
	misses := ix.Stats().CacheMisses
	again, ok := ix.Lookup(host)
	if !ok {
		t.Fatal("hostname stopped resolving after eviction")
	}
	if ix.Stats().CacheMisses != misses+1 {
		t.Fatal("expected the evicted entry to be recomputed (a cache miss)")
	}
	if again.Loc.String() != first.Loc.String() || again.Hint != first.Hint || again.Suffix != first.Suffix {
		t.Fatalf("post-eviction lookup differs: %+v vs %+v", again, first)
	}
}
