package geoloc

import (
	"strconv"
	"strings"

	"hoiho/internal/core"
)

// AnswerStrings renders a geolocation as key=value strings — the TXT
// RDATA the geodns daemon serves, one character-string per field. The
// keys mirror the /v1 JSON field names (city, region, country, lat,
// long, suffix, hint, type, learned) so the two front ends stay
// mechanically comparable: joining these pairs and the JSON body must
// describe the same answer. Empty region and false learned are
// omitted, like their omitempty JSON counterparts.
func AnswerStrings(g *core.Geolocation) []string {
	if g == nil || g.Loc == nil {
		return nil
	}
	out := make([]string, 0, 9)
	out = append(out, "city="+g.Loc.City)
	if g.Loc.Region != "" {
		out = append(out, "region="+g.Loc.Region)
	}
	out = append(out, "country="+g.Loc.Country,
		"lat="+strconv.FormatFloat(g.Loc.Pos.Lat, 'g', -1, 64),
		"long="+strconv.FormatFloat(g.Loc.Pos.Long, 'g', -1, 64),
		"suffix="+g.Suffix,
		"hint="+g.Hint,
		"type="+g.Type.String())
	if g.Learned {
		out = append(out, "learned=true")
	}
	return out
}

// PTRTarget renders a geolocation as a synthetic domain name under the
// RFC 2606 reserved "invalid." TLD — the type-correct payload for a
// PTR answer: <city>.<region>.<country>.geo.invalid., with the region
// label omitted when the location has none. Label bytes that DNS
// presentation format or common tooling would trip on (spaces, dots,
// anything outside lower-case alphanumerics and '-') are folded to
// '-' so the name never needs escaping.
func PTRTarget(g *core.Geolocation) string {
	if g == nil || g.Loc == nil {
		return ""
	}
	var b strings.Builder
	for _, label := range []string{g.Loc.City, g.Loc.Region, g.Loc.Country} {
		if label == "" {
			continue
		}
		for i := 0; i < len(label); i++ {
			c := label[i]
			if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-' {
				b.WriteByte(c)
			} else {
				b.WriteByte('-')
			}
		}
		b.WriteByte('.')
	}
	b.WriteString("geo.invalid.")
	return b.String()
}
