package geoloc

import (
	"fmt"
	"strconv"
	"strings"

	"hoiho/internal/core"
	"hoiho/internal/geodict"
)

// Resolution names for an ExplainStep that matched.
const (
	// ResolutionLearned: the hint resolved through the convention's
	// stage-4 learned-geohint overlay, which takes precedence over the
	// dictionary.
	ResolutionLearned = "learned-overlay"
	// ResolutionDictionary: the hint resolved through the reference
	// dictionary, possibly disambiguated across interpretations.
	ResolutionDictionary = "dictionary"
	// ResolutionUnresolved: the regex matched but the extracted string
	// resolved to no location. Per the paper's application rule the
	// first matching regex decides, so this is a terminal miss, not a
	// fall-through to later regexes.
	ResolutionUnresolved = "unresolved"
)

// ExplainLocation is the location payload of an explanation, with the
// /v1 JSON field names so explain output is mechanically comparable to
// geolocate output.
type ExplainLocation struct {
	City       string  `json:"city"`
	Region     string  `json:"region,omitempty"`
	Country    string  `json:"country"`
	Lat        float64 `json:"lat"`
	Long       float64 `json:"long"`
	Population int     `json:"population,omitempty"`
}

// ExplainStep traces one candidate regex of the dispatched convention,
// in the convention's learned preference order.
type ExplainStep struct {
	// Pattern is the regex in its published string form.
	Pattern string `json:"pattern"`
	// HintType is the dictionary the regex's hint capture targets.
	HintType string `json:"hint_type"`
	// Matched reports whether the regex matched the hostname. When
	// false the remaining fields are empty and the next regex was tried.
	Matched bool `json:"matched"`
	// Hint, State, Country echo the extraction's captures.
	Hint    string `json:"hint,omitempty"`
	State   string `json:"state,omitempty"`
	Country string `json:"country,omitempty"`
	// Resolution says how the extraction was interpreted: one of the
	// Resolution* constants.
	Resolution string `json:"resolution,omitempty"`
	// Candidates counts dictionary interpretations that survived
	// annotation filtering, before disambiguation (dictionary path only).
	Candidates int `json:"candidates,omitempty"`
	// LearnedTP/LearnedFP/LearnedCollide echo the congruence evidence
	// behind a learned-overlay resolution.
	LearnedTP      int  `json:"learned_tp,omitempty"`
	LearnedFP      int  `json:"learned_fp,omitempty"`
	LearnedCollide bool `json:"learned_collide,omitempty"`
	// Location is the resolved answer in "City, REGION, CC" form.
	Location string `json:"location,omitempty"`
}

// ExplainConvention summarizes the dispatched convention's published
// evidence: its classification and the tally behind its PPV, the
// paper's per-convention confidence measure.
type ExplainConvention struct {
	Class       string  `json:"class"`
	PPV         float64 `json:"ppv"`
	TP          int     `json:"tp"`
	FP          int     `json:"fp"`
	FN          int     `json:"fn"`
	UNK         int     `json:"unk"`
	UniqueHints int     `json:"unique_hints"`
	Regexes     int     `json:"regexes"`
	Learned     int     `json:"learned_hints"`
}

// Explanation is the full decision trace for one lookup: suffix
// dispatch, each candidate regex tried, how the extraction resolved,
// and the final geohint with the convention's published evidence. The
// struct's field order is its canonical JSON rendering order.
type Explanation struct {
	Hostname   string `json:"hostname"`
	Normalized string `json:"normalized"`
	Suffix     string `json:"suffix"`
	// Indexed reports whether a convention is indexed for the suffix;
	// when false the trace ends at dispatch.
	Indexed    bool               `json:"indexed"`
	Convention *ExplainConvention `json:"convention,omitempty"`
	Steps      []ExplainStep      `json:"steps,omitempty"`
	// Located is the lookup verdict; the fields below are set only when
	// true and match what Lookup would return.
	Located  bool             `json:"located"`
	Hint     string           `json:"hint,omitempty"`
	HintType string           `json:"hint_type,omitempty"`
	Learned  bool             `json:"learned,omitempty"`
	Location *ExplainLocation `json:"location,omitempty"`
}

// Explain runs the lookup decision procedure for one hostname and
// records every stage. It mirrors Lookup exactly — same dispatch, same
// regex order, same first-match-decides rule, same overlay-then-
// dictionary resolution — but bypasses the result cache and the Stats
// counters: an explanation is diagnostic traffic, not serving load,
// and must show the decision even when the answer is memoized.
func (ix *Index) Explain(hostname string) *Explanation {
	ex := &Explanation{Hostname: hostname, Normalized: normalize(hostname)}
	ex.Suffix = ix.list.RegistrableDomain(ex.Normalized)
	c := ix.convs[ex.Suffix]
	if c == nil {
		return ex
	}
	ex.Indexed = true
	nc := c.nc
	ex.Convention = &ExplainConvention{
		Class:       nc.Class.String(),
		PPV:         nc.Tally.PPV(),
		TP:          nc.Tally.TP,
		FP:          nc.Tally.FP,
		FN:          nc.Tally.FN,
		UNK:         nc.Tally.UNK,
		UniqueHints: nc.Tally.UniqueHints,
		Regexes:     len(nc.Regexes),
		Learned:     len(nc.Learned),
	}
	for _, r := range nc.Regexes {
		step := ExplainStep{Pattern: r.String(), HintType: r.Hint.String()}
		ext, ok := r.Match(ex.Normalized)
		if !ok {
			ex.Steps = append(ex.Steps, step)
			continue
		}
		step.Matched = true
		step.Hint, step.State, step.Country = ext.Hint, ext.State, ext.Country
		if loc, ok := c.learned[hintKey{ext.Type, ext.Hint}]; ok {
			step.Resolution = ResolutionLearned
			step.Location = loc.String()
			// Recover the congruence evidence behind the overlay entry;
			// first match wins, the order the overlay map was built in.
			for _, lh := range nc.Learned {
				if lh.Type == ext.Type && lh.Hint == ext.Hint {
					step.LearnedTP, step.LearnedFP, step.LearnedCollide = lh.TP, lh.FP, lh.Collide
					break
				}
			}
			ex.Steps = append(ex.Steps, step)
			ex.finish(ext.Hint, ext.Type, true, loc)
			return ex
		}
		locs := core.DictionaryLocations(ix.dict, ext)
		step.Candidates = len(locs)
		if len(locs) == 0 {
			step.Resolution = ResolutionUnresolved
			ex.Steps = append(ex.Steps, step)
			return ex
		}
		loc := core.PickLocation(ix.dict, locs)
		step.Resolution = ResolutionDictionary
		step.Location = loc.String()
		ex.Steps = append(ex.Steps, step)
		ex.finish(ext.Hint, ext.Type, false, loc)
		return ex
	}
	return ex
}

// finish fills the answer fields of a located explanation.
func (ex *Explanation) finish(hint string, typ geodict.HintType, learned bool, loc *geodict.Location) {
	ex.Located = true
	ex.Hint = hint
	ex.HintType = typ.String()
	ex.Learned = learned
	ex.Location = &ExplainLocation{
		City:       loc.City,
		Region:     loc.Region,
		Country:    loc.Country,
		Lat:        loc.Pos.Lat,
		Long:       loc.Pos.Long,
		Population: loc.Population,
	}
}

// Text renders the explanation as a deterministic human-readable
// report — the byte-for-byte form `hoiho -explain` prints and the
// golden test pins. Floats render with strconv's shortest form so the
// text and JSON renderings of the same value always agree.
func (ex *Explanation) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hostname:   %s\n", ex.Hostname)
	if ex.Normalized != ex.Hostname {
		fmt.Fprintf(&b, "normalized: %s\n", ex.Normalized)
	}
	fmt.Fprintf(&b, "suffix:     %s\n", ex.Suffix)
	if !ex.Indexed {
		b.WriteString("verdict:    no convention indexed for suffix\n")
		return b.String()
	}
	cv := ex.Convention
	fmt.Fprintf(&b, "convention: %s (PPV %s; TP %d FP %d FN %d UNK %d; %d unique hints; %d regexes, %d learned hints)\n",
		cv.Class, formatFloat(cv.PPV), cv.TP, cv.FP, cv.FN, cv.UNK, cv.UniqueHints, cv.Regexes, cv.Learned)
	for i, st := range ex.Steps {
		fmt.Fprintf(&b, "regex %d:    %s (%s)\n", i+1, st.Pattern, st.HintType)
		if !st.Matched {
			b.WriteString("            no match\n")
			continue
		}
		fmt.Fprintf(&b, "            matched hint=%q", st.Hint)
		if st.State != "" {
			fmt.Fprintf(&b, " state=%q", st.State)
		}
		if st.Country != "" {
			fmt.Fprintf(&b, " country=%q", st.Country)
		}
		b.WriteByte('\n')
		switch st.Resolution {
		case ResolutionLearned:
			fmt.Fprintf(&b, "            learned overlay: %s (TP %d FP %d", st.Location, st.LearnedTP, st.LearnedFP)
			if st.LearnedCollide {
				b.WriteString("; collides with dictionary")
			}
			b.WriteString(")\n")
		case ResolutionDictionary:
			fmt.Fprintf(&b, "            dictionary: %d interpretation(s) -> %s\n", st.Candidates, st.Location)
		case ResolutionUnresolved:
			b.WriteString("            unresolved: extraction not in dictionary (first match decides; miss)\n")
		}
	}
	if !ex.Located {
		b.WriteString("verdict:    not located\n")
		return b.String()
	}
	source := ResolutionDictionary
	if ex.Learned {
		source = ResolutionLearned
	}
	fmt.Fprintf(&b, "verdict:    %s (hint %q, %s, via %s)\n",
		ex.Location.describe(), ex.Hint, ex.HintType, source)
	fmt.Fprintf(&b, "            lat=%s long=%s", formatFloat(ex.Location.Lat), formatFloat(ex.Location.Long))
	if ex.Location.Population > 0 {
		fmt.Fprintf(&b, " population=%d", ex.Location.Population)
	}
	b.WriteByte('\n')
	return b.String()
}

// describe renders the location in the same "city, region, country"
// shape as geodict.Location.String, from the JSON-facing fields.
func (l *ExplainLocation) describe() string {
	parts := []string{l.City}
	if l.Region != "" {
		parts = append(parts, l.Region)
	}
	parts = append(parts, l.Country)
	return strings.Join(parts, ", ")
}

// formatFloat renders a float in shortest round-trip form, matching
// encoding/json's default so the two renderings never disagree.
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
