package geoloc

// Zero-downtime serving: a Live holder publishes the current Index
// behind an atomic pointer so lookups never block on a reload. A swap
// is a single pointer store — in-flight requests that already loaded
// the old Index finish against it (immutability makes that safe), and
// the old Index drains naturally: once the last in-flight reference is
// dropped the garbage collector reclaims it. There is no lock on the
// lookup path and no quiesce window.

import (
	"fmt"
	"sync/atomic"
)

// Live is an atomically swappable reference to the serving Index.
// Index and Swap are safe for concurrent use from any number of
// goroutines.
type Live struct {
	ptr atomic.Pointer[Index]
	gen atomic.Uint64
}

// NewLive publishes ix as generation 1.
func NewLive(ix *Index) *Live {
	l := &Live{}
	l.ptr.Store(ix)
	l.gen.Store(1)
	return l
}

// Index returns the current serving index. Callers should load it once
// per request and use that reference throughout, so a mid-request swap
// cannot split one request across two indexes.
func (l *Live) Index() *Index { return l.ptr.Load() }

// Swap atomically replaces the serving index, returning the index it
// displaced and the new generation number. The old index remains valid
// for readers that already hold it.
func (l *Live) Swap(next *Index) (old *Index, gen uint64) {
	old = l.ptr.Swap(next)
	return old, l.gen.Add(1)
}

// Generation returns the current generation: 1 for the boot index,
// incremented by every Swap.
func (l *Live) Generation() uint64 { return l.gen.Load() }

// SpotCheck validates a replacement index before it is swapped in: the
// replacement must be non-nil and non-empty, probe lookups over a
// deterministic sample of its suffixes must complete (exercising
// normalization, PSL dispatch, and the compiled matchers), and for
// sampled suffixes the old and new index must agree on dispatch — a
// probe hostname under a shared suffix must route to the same
// registrable domain in both, which catches a PSL or normalization skew
// between build and serve. old may be nil (boot); samples <= 0 checks
// every suffix.
//
// The probes run against the real lookup path, so they count in the new
// index's stats and may seed its cache; both effects are harmless. The
// probes' lookup outcomes are deliberately not asserted — whether a
// probe matches depends on the learned regexes, which a reload is
// allowed to change.
func SpotCheck(old, next *Index, samples int) error {
	if next == nil {
		return fmt.Errorf("geoloc: spot-check: replacement index is nil")
	}
	if next.Len() == 0 {
		return fmt.Errorf("geoloc: spot-check: replacement index is empty")
	}
	suffixes := next.Suffixes()
	if samples > 0 && len(suffixes) > samples {
		suffixes = suffixes[:samples]
	}
	for _, suffix := range suffixes {
		probe := "spotcheck." + suffix
		next.Lookup(probe) // must complete: dispatch + matcher walk, no panic
		if got := next.Suffix(probe); got != suffix {
			return fmt.Errorf("geoloc: spot-check: probe %q dispatches to %q, want %q", probe, got, suffix)
		}
		if old != nil && old.Convention(suffix) != nil {
			if oldGot := old.Suffix(probe); oldGot != suffix {
				return fmt.Errorf("geoloc: spot-check: dispatch skew on %s: old index routes %q to %q",
					suffix, probe, oldGot)
			}
		}
	}
	return nil
}
