// Package geoloc is the serving layer of the Hoiho method: it compiles
// learned naming conventions (a core.Result, whether fresh from the
// pipeline or read back from a published conventions file) into an
// immutable, concurrency-safe lookup Index, the structure behind both
// the hoiho CLI's -geolocate flag and the geoserve HTTP daemon.
//
// Compilation does all per-request-avoidable work up front: hostnames
// dispatch to their convention by registrable domain (public suffix
// list), every regex is compiled exactly once at build time, and
// stage-4 learned geohints are resolved into O(1) overlay maps. Lookups
// after New never compile a regex. A bounded, sharded LRU cache absorbs
// repeated hostnames — the common shape of measurement traffic, where
// the same router interfaces recur across traces.
//
// The Index is immutable after New: concurrent Lookup and LookupBatch
// callers need no external synchronization, and identical inputs
// produce identical answers regardless of interleaving (the cache only
// memoizes; it never changes a result).
package geoloc

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"hoiho/internal/core"
	"hoiho/internal/geodict"
	"hoiho/internal/obs"
	"hoiho/internal/psl"
	"hoiho/internal/rex"
)

// DefaultCacheSize is the result-cache bound used when Options.CacheSize
// is zero.
const DefaultCacheSize = 4096

// Options configures Index compilation. The zero value loads the
// embedded default dictionary and public suffix list, indexes every
// convention, and enables a DefaultCacheSize-entry cache.
type Options struct {
	// Dict resolves extracted geohints. nil loads geodict.Default.
	Dict *geodict.Dictionary
	// PSL dispatches hostnames to their registrable domain. nil loads
	// psl.Default.
	PSL *psl.List
	// UsableOnly restricts the index to good and promising conventions,
	// the paper's recommendation for production application.
	UsableOnly bool
	// CacheSize bounds the LRU result cache in entries. 0 means
	// DefaultCacheSize; negative disables caching.
	CacheSize int
	// Tracer, when non-nil, records a compile span at New and per-batch
	// spans in LookupBatch. Single-hostname Lookup is deliberately not
	// spanned — it is the nanosecond-scale hot path — but all its work
	// still lands in the atomic Stats counters.
	Tracer *obs.Tracer
}

// hintKey identifies a learned-geohint overlay entry.
type hintKey struct {
	typ  geodict.HintType
	hint string
}

// convention is the compiled serving state for one suffix.
type convention struct {
	nc      *core.NamingConvention
	learned map[hintKey]*geodict.Location
	matches atomic.Uint64
}

// Index is a compiled, immutable set of naming conventions ready to
// geolocate hostnames. Build one with New; methods are safe for
// concurrent use.
type Index struct {
	dict   *geodict.Dictionary
	list   *psl.List
	convs  map[string]*convention
	cache  *cache      // nil when disabled
	tracer *obs.Tracer // nil when tracing disabled

	lookups     atomic.Uint64
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	matched     atomic.Uint64
	unmatched   atomic.Uint64
	byClass     [3]atomic.Uint64 // indexed by core.Classification
}

// New compiles a result's conventions into an Index. Every regex is
// compiled here — a convention whose pattern does not compile fails the
// build rather than silently never matching — and learned geohints are
// flattened into per-convention overlay maps (first entry wins on
// duplicates, matching Geolocate's scan order).
func New(res *core.Result, opts Options) (*Index, error) {
	if res == nil {
		return nil, fmt.Errorf("geoloc: nil result")
	}
	dict := opts.Dict
	if dict == nil {
		var err error
		if dict, err = geodict.Default(); err != nil {
			return nil, err
		}
	}
	list := opts.PSL
	if list == nil {
		var err error
		if list, err = psl.Default(); err != nil {
			return nil, err
		}
	}
	sp := opts.Tracer.Start("geoloc-compile")
	compiled0, _ := rex.CompileCounts()
	matchers0, _ := rex.MatcherCounts()
	ix := &Index{dict: dict, list: list, convs: make(map[string]*convention, len(res.NCs)), tracer: opts.Tracer}
	for suffix, nc := range res.NCs {
		if nc == nil || (opts.UsableOnly && !nc.Class.Usable()) {
			continue
		}
		c := &convention{nc: nc, learned: make(map[hintKey]*geodict.Location, len(nc.Learned))}
		for _, r := range nc.Regexes {
			// Prepare builds the specialized rexmatch program (or, for a
			// regex outside its dialect, compiles the stdlib form) so no
			// Lookup ever pays compile cost — and a convention whose
			// pattern is invalid still fails the build here.
			if err := r.Prepare(); err != nil {
				return nil, fmt.Errorf("geoloc: suffix %s: %w", suffix, err)
			}
		}
		for _, lh := range nc.Learned {
			k := hintKey{lh.Type, lh.Hint}
			if _, dup := c.learned[k]; !dup {
				c.learned[k] = lh.Loc
			}
		}
		ix.convs[suffix] = c
	}
	size := opts.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	if size > 0 {
		ix.cache = newCache(size)
	}
	compiled1, _ := rex.CompileCounts()
	matchers1, _ := rex.MatcherCounts()
	sp.Count("conventions", int64(len(ix.convs)))
	sp.Count("regexes_compiled", compiled1-compiled0)
	sp.Count("matchers_compiled", matchers1-matchers0)
	sp.End()
	return ix, nil
}

// Len returns the number of indexed conventions.
func (ix *Index) Len() int { return len(ix.convs) }

// Suffixes returns the indexed suffixes, sorted.
func (ix *Index) Suffixes() []string {
	out := make([]string, 0, len(ix.convs))
	for s := range ix.convs {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Suffix returns the registrable domain the index would dispatch a
// hostname to, after normalization.
func (ix *Index) Suffix(hostname string) string {
	return ix.list.RegistrableDomain(normalize(hostname))
}

// Convention returns the indexed convention for a suffix, or nil.
func (ix *Index) Convention(suffix string) *core.NamingConvention {
	if c := ix.convs[suffix]; c != nil {
		return c.nc
	}
	return nil
}

// Lookup geolocates one hostname: normalize, dispatch to the suffix's
// convention, match its regexes in learned preference order, resolve
// the extracted geohint (learned overlay first, then dictionary). ok is
// false when no convention is indexed for the suffix, no regex matches,
// or the extraction resolves to no location. The returned Geolocation
// is shared with the cache and must not be mutated.
func (ix *Index) Lookup(hostname string) (*core.Geolocation, bool) {
	ix.lookups.Add(1)
	g, _ := ix.lookup(normalize(hostname))
	return g, g != nil
}

// lookup runs the cache-then-locate path for an already-normalized
// hostname, reporting whether the answer came from the cache so batch
// callers can count hits locally (reading the shared atomic counters
// per-batch would race with concurrent batches).
func (ix *Index) lookup(host string) (g *core.Geolocation, cacheHit bool) {
	if ix.cache != nil {
		if g, ok := ix.cache.get(host); ok {
			ix.cacheHits.Add(1)
			ix.count(g)
			return g, true
		}
		ix.cacheMisses.Add(1)
	}
	g = ix.locate(host)
	if ix.cache != nil {
		ix.cache.put(host, g)
	}
	ix.count(g)
	return g, false
}

// LookupBatch geolocates hostnames in order. The result slice is
// aligned with the input; entries are nil where the hostname did not
// resolve. Safe to call from many goroutines concurrently. When the
// index was built with a tracer, each batch records a span counting
// hostnames, located answers, and cache hits.
func (ix *Index) LookupBatch(hostnames []string) []*core.Geolocation {
	sp := ix.tracer.Start("lookup-batch")
	out := make([]*core.Geolocation, len(hostnames))
	var located, hits int64
	for i, h := range hostnames {
		ix.lookups.Add(1)
		g, hit := ix.lookup(normalize(h))
		out[i] = g
		if g != nil {
			located++
		}
		if hit {
			hits++
		}
	}
	sp.Count("hostnames", int64(len(hostnames)))
	sp.Count("located", located)
	sp.Count("cache_hits", hits)
	sp.End()
	return out
}

// locate runs the uncached lookup path.
func (ix *Index) locate(host string) *core.Geolocation {
	c := ix.convs[ix.list.RegistrableDomain(host)]
	if c == nil {
		return nil
	}
	for _, r := range c.nc.Regexes {
		ext, ok := r.Match(host)
		if !ok {
			continue
		}
		g := &core.Geolocation{
			Hostname: host, Suffix: c.nc.Suffix, Hint: ext.Hint, Type: ext.Type,
		}
		if loc, ok := c.learned[hintKey{ext.Type, ext.Hint}]; ok {
			g.Loc, g.Learned = loc, true
			return g
		}
		locs := core.DictionaryLocations(ix.dict, ext)
		if len(locs) == 0 {
			// Mirror core.Geolocate: the first matching regex decides;
			// an unresolvable extraction is a miss, not a fall-through.
			return nil
		}
		g.Loc = core.PickLocation(ix.dict, locs)
		return g
	}
	return nil
}

// count records a lookup outcome in the index counters.
func (ix *Index) count(g *core.Geolocation) {
	if g == nil {
		ix.unmatched.Add(1)
		return
	}
	ix.matched.Add(1)
	if c := ix.convs[g.Suffix]; c != nil {
		c.matches.Add(1)
		ix.byClass[c.nc.Class].Add(1)
	}
}

// Stats is a point-in-time snapshot of the index counters.
type Stats struct {
	Lookups     uint64 `json:"lookups"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	Matched     uint64 `json:"matched"`
	Unmatched   uint64 `json:"unmatched"`
	// ByClass counts matches per NC classification name.
	ByClass map[string]uint64 `json:"by_class"`
	// BySuffix counts matches per suffix; suffixes with zero matches are
	// omitted.
	BySuffix map[string]uint64 `json:"by_suffix"`
}

// Stats snapshots the counters. Counters are read individually, so a
// snapshot taken during concurrent lookups is approximate (but each
// counter is itself exact).
func (ix *Index) Stats() Stats {
	s := Stats{
		Lookups:     ix.lookups.Load(),
		CacheHits:   ix.cacheHits.Load(),
		CacheMisses: ix.cacheMisses.Load(),
		Matched:     ix.matched.Load(),
		Unmatched:   ix.unmatched.Load(),
		ByClass:     make(map[string]uint64, len(ix.byClass)),
		BySuffix:    make(map[string]uint64),
	}
	for cls := range ix.byClass {
		if n := ix.byClass[cls].Load(); n > 0 {
			s.ByClass[core.Classification(cls).String()] = n
		}
	}
	for suffix, c := range ix.convs {
		if n := c.matches.Load(); n > 0 {
			s.BySuffix[suffix] = n
		}
	}
	return s
}

// normalize canonicalises a hostname for matching and caching: naming
// conventions are learned over lower-case hostnames without a trailing
// root dot.
func normalize(hostname string) string {
	return strings.ToLower(strings.TrimSuffix(strings.TrimSpace(hostname), "."))
}
