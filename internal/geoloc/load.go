package geoloc

import (
	"io"
	"os"
	"path/filepath"

	"hoiho/internal/core"
	"hoiho/internal/geodict"
	"hoiho/internal/itdk"
	"hoiho/internal/psl"
	"hoiho/internal/rtt"
)

// LoadConventions reads a published conventions file (the output of
// `hoiho -write-nc`) into a Result ready for New.
func LoadConventions(path string) (*core.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.ReadConventions(f)
}

// LoadInputs assembles the pipeline's stage-1 inputs from a corpus
// directory containing corpus.nodes, corpus.names, and rtt.matrix
// (corpus.geo is optional and ignored by learning), with the embedded
// default dictionary and public suffix list.
func LoadInputs(dir string) (core.Inputs, error) {
	var in core.Inputs
	dict, err := geodict.Default()
	if err != nil {
		return in, err
	}
	list, err := psl.Default()
	if err != nil {
		return in, err
	}
	corpus, err := readCorpus(dir)
	if err != nil {
		return in, err
	}
	mf, err := os.Open(filepath.Join(dir, "rtt.matrix"))
	if err != nil {
		return in, err
	}
	defer mf.Close()
	matrix, err := rtt.ReadMatrix(mf)
	if err != nil {
		return in, err
	}
	return core.Inputs{Dict: dict, PSL: list, Corpus: corpus, RTT: matrix}, nil
}

// readCorpus concatenates the nodes and names files (geo is optional).
func readCorpus(dir string) (*itdk.Corpus, error) {
	var readers []io.Reader
	var closers []io.Closer
	defer func() {
		for _, c := range closers {
			//lint:ignore droppederr every closer is an os.Open handle; closing a read-only fd cannot lose data
			c.Close()
		}
	}()
	for _, name := range []string{"corpus.nodes", "corpus.names", "corpus.geo"} {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			if name == "corpus.geo" && os.IsNotExist(err) {
				continue
			}
			return nil, err
		}
		closers = append(closers, f)
		readers = append(readers, f)
	}
	return itdk.ReadCorpus(io.MultiReader(readers...), filepath.Base(dir), false)
}
