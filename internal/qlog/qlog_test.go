package qlog

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// frozen returns a clock pinned to a fixed instant, mirroring the
// obs.FrozenClock contract so qlog output is byte-stable in goldens.
func frozen(us int64) func() time.Time {
	return func() time.Time { return time.UnixMicro(us) }
}

// TestRecordRendering pins the serialized bytes: fixed field order,
// omitted empty optionals, quoted escaping.
func TestRecordRendering(t *testing.T) {
	var buf bytes.Buffer
	l, err := New(Options{W: &buf, Clock: frozen(1700000000000000)})
	if err != nil {
		t.Fatal(err)
	}
	l.Log(Record{
		Front:      "http",
		Op:         "POST /v1/geolocate",
		ID:         l.NextID(),
		Hostname:   "ae-1.cr1.iad2.transitnet.net",
		Source:     "192.0.2.7:4242",
		Status:     200,
		Outcome:    "ok",
		DurUS:      137,
		Generation: 3,
	})
	l.Log(Record{Front: "dns", Op: "TXT", Status: 3, Outcome: "nxdomain"})
	want := `{"ts_us":1700000000000000,"id":"q1","front":"http","op":"POST /v1/geolocate",` +
		`"hostname":"ae-1.cr1.iad2.transitnet.net","source":"192.0.2.7:4242",` +
		`"status":200,"outcome":"ok","dur_us":137,"generation":3}` + "\n" +
		`{"ts_us":1700000000000000,"front":"dns","op":"TXT","status":3,"outcome":"nxdomain","dur_us":0}` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("rendering:\n got: %q\nwant: %q", got, want)
	}
}

// TestEscaping: hostnames and sources with JSON metacharacters must
// not corrupt the line structure.
func TestEscaping(t *testing.T) {
	var buf bytes.Buffer
	l, err := New(Options{W: &buf, Clock: frozen(1)})
	if err != nil {
		t.Fatal(err)
	}
	l.Log(Record{Front: "http", Op: "GET /v1/explain", Hostname: "evil\"host\n.example"})
	want := `{"ts_us":1,"front":"http","op":"GET /v1/explain","hostname":"evil\"host\n.example","dur_us":0}` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("escaping:\n got: %q\nwant: %q", got, want)
	}
}

// TestSampling: 1-in-N keeps exactly the 1st, N+1th, ... records —
// deterministic, not probabilistic.
func TestSampling(t *testing.T) {
	var buf bytes.Buffer
	l, err := New(Options{W: &buf, Sample: 3, Clock: frozen(1)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		l.Log(Record{Front: "dns", Op: "TXT"})
	}
	if got := strings.Count(buf.String(), "\n"); got != 4 {
		t.Errorf("kept %d of 10 at sample=3, want 4", got)
	}
	st := l.Stats()
	if st.Logged != 4 || st.Skipped != 6 {
		t.Errorf("stats = %+v, want logged=4 skipped=6", st)
	}
}

// TestRotation: the live file never exceeds MaxBytes once rotation has
// something to rotate; the previous generation survives as <path>.1.
func TestRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "query.log")
	l, err := New(Options{Path: path, MaxBytes: 200, Clock: frozen(1)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		l.Log(Record{Front: "http", Op: "POST /v1/geolocate", Outcome: "ok"})
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	live, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if live.Size() > 200 {
		t.Errorf("live file %d bytes exceeds MaxBytes=200", live.Size())
	}
	old, err := os.Stat(path + ".1")
	if err != nil {
		t.Fatalf("rotated file missing: %v", err)
	}
	if old.Size() == 0 {
		t.Error("rotated file is empty")
	}
	if st := l.Stats(); st.Rotations == 0 {
		t.Error("no rotations counted")
	}
}

// TestAppendAcrossReopen: a reopened logger honors the existing file
// size so MaxBytes bounds the file across restarts, not per process.
func TestAppendAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "query.log")
	for i := 0; i < 2; i++ {
		l, err := New(Options{Path: path, Clock: frozen(1)})
		if err != nil {
			t.Fatal(err)
		}
		l.Log(Record{Front: "dns", Op: "TXT"})
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(data), "\n"); got != 2 {
		t.Errorf("file has %d lines after two sessions, want 2", got)
	}
}

// TestNilLoggerZeroAlloc is the acceptance criterion: with qlog
// disabled (nil logger), the per-query calls handlers make must not
// allocate at all.
func TestNilLoggerZeroAlloc(t *testing.T) {
	var l *Logger
	r := Record{Front: "http", Op: "POST /v1/geolocate", Hostname: "h", Status: 200, DurUS: 5}
	allocs := testing.AllocsPerRun(1000, func() {
		id := l.NextID()
		_ = id
		l.Log(r)
		_ = l.Enabled()
		_ = l.Stats()
	})
	if allocs != 0 {
		t.Errorf("disabled path allocates %v per query, want 0", allocs)
	}
}

// TestNilSafety: every method on a nil logger is a no-op, including
// Close.
func TestNilSafety(t *testing.T) {
	var l *Logger
	if l.Enabled() {
		t.Error("nil logger reports enabled")
	}
	if id := l.NextID(); id != "" {
		t.Errorf("nil NextID = %q, want empty", id)
	}
	if err := l.Close(); err != nil {
		t.Errorf("nil Close = %v", err)
	}
	if st := l.Stats(); st != (Stats{}) {
		t.Errorf("nil Stats = %+v", st)
	}
}

// TestOptionValidation: exactly one sink.
func TestOptionValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("no sink accepted")
	}
	if _, err := New(Options{Path: "x", W: &bytes.Buffer{}}); err == nil {
		t.Error("two sinks accepted")
	}
}

// TestConcurrentLog: records from concurrent writers interleave as
// whole lines (run under -race in CI).
func TestConcurrentLog(t *testing.T) {
	var buf bytes.Buffer
	l, err := New(Options{W: &buf, Clock: frozen(1)})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Log(Record{Front: "dns", Op: "TXT", ID: l.NextID()})
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
	for _, ln := range lines {
		if !strings.HasPrefix(ln, `{"ts_us":`) || !strings.HasSuffix(ln, "}") {
			t.Fatalf("torn line: %q", ln)
		}
	}
}
