// Package qlog is the structured query log shared by the serving
// front ends: one JSONL record per answered query (HTTP request or DNS
// packet), sampled, size-rotated, and cheap enough to leave compiled
// into every handler.
//
// The design constraints, in order:
//
//   - Zero cost when disabled. A nil *Logger is the disabled state;
//     every method no-ops without allocating, so handlers carry
//     unconditional qlog calls with no "is logging on?" branches and
//     the hot path is unchanged when the operator never passed -qlog
//     (TestNilLoggerZeroAlloc pins AllocsPerRun == 0, the same
//     contract internal/obs makes for a nil Tracer).
//
//   - Deterministic records. Fields serialize in a fixed order with an
//     injectable clock, so a frozen-clock run emits byte-identical
//     lines — the property that lets CI upload a sample log as a
//     diffable artifact next to the golden trace.
//
//   - Bounded disk. Sampling keeps 1-in-N records; rotation renames
//     the live file to <path>.1 (replacing the previous rotation) when
//     it would exceed MaxBytes, so the log occupies at most about
//     twice MaxBytes regardless of uptime.
//
// Records carry a request ID minted by NextID; the serving layers
// stamp the same ID on their per-query obs span (Span.SetAttr), which
// is what makes a slow span in a trace joinable against the query that
// caused it.
package qlog

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Record is one query-log line. The zero value of every optional
// field (empty string, zero int) is omitted from the serialized form;
// Front, Op, and the timestamp always appear.
type Record struct {
	// Front identifies the serving surface: "http" or "dns".
	Front string
	// Op is the operation: an HTTP route pattern ("POST /v1/geolocate")
	// or a DNS query type ("TXT").
	Op string
	// ID is the request id minted by NextID, joining this record to the
	// query's obs span.
	ID string
	// Hostname is the looked-up hostname, when the operation has one.
	Hostname string
	// Source is the client address, when known.
	Source string
	// Status is the HTTP status code or numeric DNS rcode.
	Status int
	// Outcome is the coarse verdict: "ok", "miss", an rcode name —
	// whatever taxonomy the front end already counts.
	Outcome string
	// DurUS is the handler's wall time in microseconds.
	DurUS int64
	// Generation is the serving index generation that answered.
	Generation uint64
}

// Options configures a Logger. Exactly one of Path or W must be set.
type Options struct {
	// Path appends to this file, creating it if needed. Rotation
	// requires a Path-backed logger.
	Path string
	// W writes to an arbitrary sink (tests, stderr). No rotation.
	W io.Writer
	// Sample keeps one record in every Sample; <= 1 keeps all.
	// Sampling is a deterministic counter, not a coin flip, so the same
	// query sequence always keeps the same records.
	Sample int
	// MaxBytes rotates the live file to Path+".1" before a write would
	// push it past this size. 0 disables rotation.
	MaxBytes int64
	// Clock stamps records; nil uses time.Now. Injectable so tests and
	// golden artifacts are byte-stable.
	Clock func() time.Time
}

// Logger writes sampled query records. A nil *Logger is the disabled
// state: every method is a no-op. Construct with New; methods are safe
// for concurrent use.
type Logger struct {
	sample   uint64
	maxBytes int64
	path     string
	clock    func() time.Time

	ids atomic.Uint64 // request-id mint
	n   atomic.Uint64 // sampling counter

	mu        sync.Mutex
	w         io.Writer
	f         *os.File // non-nil only for Path-backed loggers
	buf       []byte   // serialization scratch, reused under mu
	written   int64    // bytes in the live file since open/rotation
	logged    uint64
	skipped   uint64
	rotations uint64
	err       error // first write/rotate error, latched
}

// New opens a logger. Returns an error when neither or both sinks are
// configured, or the path cannot be opened for append.
func New(opts Options) (*Logger, error) {
	if (opts.Path == "") == (opts.W == nil) {
		return nil, fmt.Errorf("qlog: exactly one of Path and W is required")
	}
	sample := uint64(1)
	if opts.Sample > 1 {
		sample = uint64(opts.Sample)
	}
	clock := opts.Clock
	if clock == nil {
		clock = time.Now
	}
	l := &Logger{
		sample:   sample,
		maxBytes: opts.MaxBytes,
		path:     opts.Path,
		clock:    clock,
		w:        opts.W,
		buf:      make([]byte, 0, 256),
	}
	if opts.Path != "" {
		f, err := os.OpenFile(opts.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		l.f, l.w, l.written = f, f, st.Size()
	}
	return l, nil
}

// Enabled reports whether records are being kept — false on nil.
func (l *Logger) Enabled() bool { return l != nil }

// NextID mints a request id ("q1", "q2", ...) or "" when logging is
// disabled, so callers can skip stamping spans for free.
func (l *Logger) NextID() string {
	if l == nil {
		return ""
	}
	return "q" + strconv.FormatUint(l.ids.Add(1), 10)
}

// Log appends one record if the sampler keeps it. Write errors are
// latched (first one wins) and surfaced by Close — a query must never
// fail because its log line did.
func (l *Logger) Log(r Record) {
	if l == nil {
		return
	}
	if n := l.n.Add(1); (n-1)%l.sample != 0 {
		l.mu.Lock()
		l.skipped++
		l.mu.Unlock()
		return
	}
	ts := l.clock().UnixMicro()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf = appendRecord(l.buf[:0], ts, r)
	if l.f != nil && l.maxBytes > 0 && l.written > 0 &&
		l.written+int64(len(l.buf)) > l.maxBytes {
		l.rotate()
	}
	n, err := l.w.Write(l.buf)
	l.written += int64(n)
	l.latch(err)
	l.logged++
}

// rotate moves the live file aside as <path>.1 (replacing any previous
// rotation) and reopens a fresh one. Called with mu held. On failure
// the logger keeps appending to the current file — losing rotation is
// better than losing the log.
func (l *Logger) rotate() {
	l.latch(l.f.Close())
	l.latch(os.Rename(l.path, l.path+".1"))
	f, err := os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		// Reopen the old file so logging continues; the latched error
		// reports the failed rotation.
		l.latch(err)
		if f, err = os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644); err != nil {
			l.latch(err)
			return
		}
	}
	l.f, l.w, l.written = f, f, 0
	l.rotations++
}

// latch records the first error the logger hits (later ones are
// dropped — the first is the cause, the rest are consequences).
// Called with mu held.
func (l *Logger) latch(err error) {
	if err != nil && l.err == nil {
		l.err = err
	}
}

// Stats is a point-in-time snapshot of the logger's counters, for the
// daemons' metrics endpoints.
type Stats struct {
	Logged    uint64
	Skipped   uint64 // sampled out
	Rotations uint64
}

// Stats snapshots the counters; zero on nil.
func (l *Logger) Stats() Stats {
	if l == nil {
		return Stats{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{Logged: l.logged, Skipped: l.skipped, Rotations: l.rotations}
}

// Close closes a Path-backed logger and returns the first latched
// write or rotation error. Nil-safe.
func (l *Logger) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != nil {
		l.latch(l.f.Close())
		l.f = nil
	}
	return l.err
}

// appendRecord serializes one record as a JSON line in fixed field
// order — hand-assembled so the order is the struct's documentation
// order regardless of encoder behavior, and so serialization reuses
// the logger's scratch buffer.
func appendRecord(b []byte, ts int64, r Record) []byte {
	b = append(b, `{"ts_us":`...)
	b = strconv.AppendInt(b, ts, 10)
	b = appendStringField(b, "id", r.ID)
	b = append(b, `,"front":`...)
	b = strconv.AppendQuote(b, r.Front)
	b = append(b, `,"op":`...)
	b = strconv.AppendQuote(b, r.Op)
	b = appendStringField(b, "hostname", r.Hostname)
	b = appendStringField(b, "source", r.Source)
	if r.Status != 0 {
		b = append(b, `,"status":`...)
		b = strconv.AppendInt(b, int64(r.Status), 10)
	}
	b = appendStringField(b, "outcome", r.Outcome)
	b = append(b, `,"dur_us":`...)
	b = strconv.AppendInt(b, r.DurUS, 10)
	if r.Generation != 0 {
		b = append(b, `,"generation":`...)
		b = strconv.AppendUint(b, r.Generation, 10)
	}
	b = append(b, '}', '\n')
	return b
}

// appendStringField appends ,"name":"value" when value is non-empty.
func appendStringField(b []byte, name, value string) []byte {
	if value == "" {
		return b
	}
	b = append(b, ',', '"')
	b = append(b, name...)
	b = append(b, '"', ':')
	return strconv.AppendQuote(b, value)
}
