// Package asn implements the second Hoiho capability the geolocation
// paper builds on (§3.4; Luckie et al., IMC 2020): learning per-suffix
// regexes that extract the *autonomous system number* operators embed in
// router hostnames — usually the ASN of the customer or peer attached
// to an interconnection interface ("as8218-acme.cr1.lhr1.ntt.net").
//
// Training validates candidate extractions against an IP-to-AS mapping
// (from BGP dumps in the paper; from generator ground truth here): a
// candidate regex scores a true positive when the number it extracts
// matches the mapping's ASN for the interface address.
package asn

import (
	"net/netip"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"hoiho/internal/itdk"
	"hoiho/internal/psl"
)

// Mapping resolves an interface address to its origin ASN — the
// substrate standing in for a BGP-derived IP-to-AS table.
type Mapping interface {
	ASN(addr netip.Addr) (uint32, bool)
}

// AddrMap is a Mapping backed by an exact per-address table.
type AddrMap map[netip.Addr]uint32

// ASN implements Mapping.
func (m AddrMap) ASN(addr netip.Addr) (uint32, bool) {
	a, ok := m[addr]
	return a, ok
}

// PrefixMap is a Mapping backed by prefix entries, longest prefix wins —
// the shape of a real IP-to-AS table.
type PrefixMap struct {
	entries []prefixEntry
}

type prefixEntry struct {
	prefix netip.Prefix
	asn    uint32
}

// Add registers a prefix. Later longer prefixes take precedence.
func (m *PrefixMap) Add(prefix netip.Prefix, asn uint32) {
	m.entries = append(m.entries, prefixEntry{prefix.Masked(), asn})
	sort.SliceStable(m.entries, func(i, j int) bool {
		return m.entries[i].prefix.Bits() > m.entries[j].prefix.Bits()
	})
}

// ASN implements Mapping with longest-prefix matching.
func (m *PrefixMap) ASN(addr netip.Addr) (uint32, bool) {
	for _, e := range m.entries {
		if e.prefix.Contains(addr) {
			return e.asn, true
		}
	}
	return 0, false
}

// Convention is a learned ASN-extraction convention for a suffix.
type Convention struct {
	Suffix  string
	Pattern string
	re      *regexp.Regexp

	TP     int // extractions matching the IP-to-AS mapping
	FP     int // extractions contradicting the mapping
	Missed int // mapped hostnames the regex did not match
}

// PPV is the convention's precision over extractions.
func (c *Convention) PPV() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// ExtractASN applies the convention to a hostname. The compiled regex
// is the suffix-stripped template, so the hostname's suffix is cut
// first; a hostname outside the suffix never matches, exactly as the
// full pattern (which ends in the literal suffix) would fail.
func (c *Convention) ExtractASN(host string) (uint32, bool) {
	u, ok := strings.CutSuffix(strings.ToLower(host), c.Suffix)
	if !ok {
		return 0, false
	}
	m := c.re.FindStringSubmatch(u)
	if m == nil {
		return 0, false
	}
	n, err := strconv.ParseUint(m[1], 10, 32)
	if err != nil || n == 0 {
		return 0, false
	}
	return uint32(n), true
}

// template pairs a candidate pattern shape with its compiled form.
// Every shape ends in the literal `<sfx>$`, so the full pattern matches
// a hostname iff the hostname ends with the suffix and the stripped
// pattern matches the rest, with identical submatches — the regexes
// compile once at package init instead of once per suffix per Learn.
type template struct {
	pattern string         // published shape, with the <sfx> placeholder
	re      *regexp.Regexp // compiled with <sfx> removed
}

// candidateTemplates is the template family; <sfx> is the escaped
// suffix. The shapes cover the conventions the IMC 2020 paper reports:
// "as"-prefixed numbers in any label and bare leading numbers.
var candidateTemplates = []template{
	{`^as(\d+)(?:-[^\.]*)?\..*<sfx>$`, regexp.MustCompile(`^as(\d+)(?:-[^\.]*)?\..*$`)},         // as8218-acme.…
	{`^.+\.as(\d+)(?:-[^\.]*)?\..*<sfx>$`, regexp.MustCompile(`^.+\.as(\d+)(?:-[^\.]*)?\..*$`)}, // x.as8218-acme.…
	{`^as(\d+)\..*<sfx>$`, regexp.MustCompile(`^as(\d+)\..*$`)},                                 // as8218.…
	{`^(\d+)\..*<sfx>$`, regexp.MustCompile(`^(\d+)\..*$`)},                                     // 8218.…
	{`^[^\.]+-as(\d+)\..*<sfx>$`, regexp.MustCompile(`^[^\.]+-as(\d+)\..*$`)},                   // acme-as8218.…
}

// Config bounds what Learn accepts.
type Config struct {
	MinTP  int     // minimum matching extractions (default 3)
	MinPPV float64 // minimum precision (default 0.9)
}

// DefaultConfig mirrors the published thresholds.
func DefaultConfig() Config { return Config{MinTP: 3, MinPPV: 0.9} }

// Learn infers ASN-extraction conventions for every suffix whose
// hostnames embed ASNs consistently with the mapping.
func Learn(corpus *itdk.Corpus, list *psl.List, mapping Mapping, cfg Config) []*Convention {
	if cfg.MinTP < 1 {
		cfg.MinTP = 3
	}
	if cfg.MinPPV <= 0 {
		cfg.MinPPV = 0.9
	}
	var out []*Convention
	for _, group := range corpus.GroupBySuffix(list) {
		if c := learnSuffix(group, mapping, cfg); c != nil {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Suffix < out[j].Suffix })
	return out
}

// hostASN pairs a hostname with its interface's mapped ASN.
type hostASN struct {
	host string
	asn  uint32
}

func learnSuffix(group *itdk.SuffixGroup, mapping Mapping, cfg Config) *Convention {
	// Collect hostnames whose interface address has a mapped ASN.
	var cases []hostASN
	for _, rh := range group.Hosts {
		for _, ifc := range rh.Router.Interfaces {
			if ifc.Hostname != rh.Hostname {
				continue
			}
			if a, ok := mapping.ASN(ifc.Addr); ok {
				cases = append(cases, hostASN{strings.ToLower(rh.Hostname), a})
			}
		}
	}
	if len(cases) < cfg.MinTP {
		return nil
	}
	sfx := regexp.QuoteMeta(group.Suffix)
	var best *Convention
	for _, tmpl := range candidateTemplates {
		pattern := strings.ReplaceAll(tmpl.pattern, "<sfx>", sfx)
		c := &Convention{Suffix: group.Suffix, Pattern: pattern, re: tmpl.re}
		for _, hc := range cases {
			got, ok := c.ExtractASN(hc.host)
			switch {
			case !ok:
				c.Missed++
			case got == hc.asn:
				c.TP++
			default:
				c.FP++
			}
		}
		if best == nil || c.TP-c.FP-c.Missed > best.TP-best.FP-best.Missed {
			best = c
		}
	}
	if best == nil || best.TP < cfg.MinTP || best.PPV() < cfg.MinPPV {
		return nil
	}
	return best
}
