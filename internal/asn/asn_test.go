package asn

import (
	"fmt"
	"net/netip"
	"testing"

	"hoiho/internal/itdk"
	"hoiho/internal/psl"
)

func buildCorpus(t *testing.T, style string) (*itdk.Corpus, AddrMap) {
	t.Helper()
	c := itdk.NewCorpus("asn", false)
	m := AddrMap{}
	ip := 0
	add := func(id string, asn uint32, hostname string) {
		ip++
		addr := netip.MustParseAddr(fmt.Sprintf("192.0.2.%d", ip))
		r := &itdk.Router{ID: id, Interfaces: []itdk.Interface{{Addr: addr, Hostname: hostname}}}
		if err := c.Add(r); err != nil {
			t.Fatal(err)
		}
		if asn != 0 {
			m[addr] = asn
		}
	}
	switch style {
	case "as-prefix":
		add("N1", 8218, "as8218-zayo.cr1.lhr1.example.net")
		add("N2", 1299, "as1299-twelve99.cr1.fra2.example.net")
		add("N3", 3356, "as3356-lumen.br1.nyc1.example.net")
		add("N4", 2914, "as2914-ntt.gw2.sjc1.example.net")
	case "bare":
		add("N1", 8218, "8218.lhr1.example.net")
		add("N2", 1299, "1299.fra2.example.net")
		add("N3", 3356, "3356.nyc1.example.net")
	case "wrong":
		// Hostnames embed numbers contradicting the mapping.
		add("N1", 8218, "as9999-x.cr1.example.net")
		add("N2", 1299, "as8888-y.cr1.example.net")
		add("N3", 3356, "as7777-z.cr1.example.net")
	}
	return c, m
}

func TestLearnASPrefix(t *testing.T) {
	c, m := buildCorpus(t, "as-prefix")
	convs := Learn(c, psl.MustDefault(), m, DefaultConfig())
	if len(convs) != 1 {
		t.Fatalf("conventions = %d, want 1", len(convs))
	}
	conv := convs[0]
	if conv.TP != 4 || conv.FP != 0 {
		t.Errorf("scores = %+v", conv)
	}
	asn, ok := conv.ExtractASN("as64512-newcustomer.edge9.ams1.example.net")
	if !ok || asn != 64512 {
		t.Errorf("ExtractASN = %d, %v", asn, ok)
	}
	if conv.PPV() != 1.0 {
		t.Errorf("PPV = %f", conv.PPV())
	}
}

func TestLearnBareNumber(t *testing.T) {
	c, m := buildCorpus(t, "bare")
	convs := Learn(c, psl.MustDefault(), m, DefaultConfig())
	if len(convs) != 1 {
		t.Fatalf("conventions = %d, want 1", len(convs))
	}
	if asn, ok := convs[0].ExtractASN("2914.sjc1.example.net"); !ok || asn != 2914 {
		t.Errorf("ExtractASN = %d, %v", asn, ok)
	}
}

func TestLearnRejectsContradictions(t *testing.T) {
	c, m := buildCorpus(t, "wrong")
	if convs := Learn(c, psl.MustDefault(), m, DefaultConfig()); len(convs) != 0 {
		t.Errorf("contradicted extractions should learn nothing: %+v", convs)
	}
}

func TestLearnNeedsMappedHostnames(t *testing.T) {
	c, _ := buildCorpus(t, "as-prefix")
	// Empty mapping: nothing to validate against.
	if convs := Learn(c, psl.MustDefault(), AddrMap{}, DefaultConfig()); len(convs) != 0 {
		t.Errorf("no mapping should learn nothing: %+v", convs)
	}
}

func TestExtractRejectsZeroASN(t *testing.T) {
	c, m := buildCorpus(t, "as-prefix")
	conv := Learn(c, psl.MustDefault(), m, DefaultConfig())[0]
	if _, ok := conv.ExtractASN("as0-null.cr1.example.net"); ok {
		t.Error("ASN 0 is reserved and must be rejected")
	}
	if _, ok := conv.ExtractASN("as99999999999-over.cr1.example.net"); ok {
		t.Error("ASN overflowing 32 bits must be rejected")
	}
}

func TestPrefixMap(t *testing.T) {
	var pm PrefixMap
	pm.Add(netip.MustParsePrefix("10.0.0.0/8"), 100)
	pm.Add(netip.MustParsePrefix("10.1.0.0/16"), 200)
	if a, ok := pm.ASN(netip.MustParseAddr("10.1.2.3")); !ok || a != 200 {
		t.Errorf("longest prefix should win: %d %v", a, ok)
	}
	if a, ok := pm.ASN(netip.MustParseAddr("10.9.0.1")); !ok || a != 100 {
		t.Errorf("fallback to shorter prefix: %d %v", a, ok)
	}
	if _, ok := pm.ASN(netip.MustParseAddr("192.0.2.1")); ok {
		t.Error("unmapped address should miss")
	}
}

func TestLearnFromSynthStyleInterconnects(t *testing.T) {
	// Mixed corpus: ordinary backbone hostnames plus interconnect
	// hostnames embedding customer ASNs — the regex must tolerate the
	// unmapped backbone names.
	c := itdk.NewCorpus("mixed", false)
	m := AddrMap{}
	ip := 0
	add := func(asn uint32, hostname string) {
		ip++
		addr := netip.MustParseAddr(fmt.Sprintf("198.51.100.%d", ip))
		r := &itdk.Router{ID: fmt.Sprintf("N%d", ip),
			Interfaces: []itdk.Interface{{Addr: addr, Hostname: hostname}}}
		_ = c.Add(r)
		if asn != 0 {
			m[addr] = asn
		}
	}
	add(0, "ae-1.cr1.lhr1.example.net")
	add(0, "ae-2.cr2.fra1.example.net")
	add(64496, "as64496-acme.cr1.lhr1.example.net")
	add(64497, "as64497-umbrella.cr2.fra1.example.net")
	add(64498, "as64498-initech.gw1.ams1.example.net")
	convs := Learn(c, psl.MustDefault(), m, DefaultConfig())
	if len(convs) != 1 || convs[0].TP != 3 {
		t.Fatalf("conventions = %+v", convs)
	}
}
