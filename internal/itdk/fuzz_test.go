package itdk

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCorpus: arbitrary corpus files must never panic, and anything
// accepted must survive a write/read round trip.
func FuzzReadCorpus(f *testing.F) {
	f.Add("node N1: 192.0.2.1 192.0.2.2\nnode.name N1 192.0.2.1 a.example.net\n" +
		"node.geo N1: 39.0438 -77.4874 ashburn|va|us\nlink N1 N1\n")
	f.Add("node N1: 192.0.2.1\nnode N2: 192.0.2.2\nlink N1 N2\n")
	f.Add("# comments only\n")
	f.Add("bogus\n")
	f.Fuzz(func(t *testing.T, in string) {
		c, err := ReadCorpus(strings.NewReader(in), "fuzz", false)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteNodes(&buf, c); err != nil {
			t.Fatal(err)
		}
		if err := WriteNames(&buf, c); err != nil {
			t.Fatal(err)
		}
		if err := WriteGeo(&buf, c); err != nil {
			t.Fatal(err)
		}
		if err := WriteLinks(&buf, c); err != nil {
			t.Fatal(err)
		}
		c2, err := ReadCorpus(&buf, "fuzz2", false)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if c2.Len() != c.Len() || len(c2.Links) != len(c.Links) {
			t.Fatalf("round trip changed shape: %d/%d routers, %d/%d links",
				c.Len(), c2.Len(), len(c.Links), len(c2.Links))
		}
	})
}
