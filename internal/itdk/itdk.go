// Package itdk models the router-level topology corpus that Hoiho learns
// from — the shape of CAIDA's Internet Topology Data Kit (paper §5.1.3).
//
// A corpus contains routers; each router aggregates the interfaces that
// alias resolution (MIDAR, Mercator, Speedtrap in the paper) inferred to
// belong to one device, and each interface may carry a hostname from a
// PTR lookup. Synthetic corpora additionally retain per-router ground
// truth locations, standing in for the operator validation data the
// paper collected by email.
package itdk

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"hoiho/internal/geo"
	"hoiho/internal/psl"
)

// Interface is a router interface: an IP address and, when a PTR record
// exists, its hostname.
type Interface struct {
	Addr     netip.Addr
	Hostname string // empty when the address has no PTR record
}

// GroundTruth is the true location of a router, available for synthetic
// corpora and for routers validated by operators.
type GroundTruth struct {
	City    string
	Region  string
	Country string
	Pos     geo.LatLong
}

// Router is an alias-resolved router.
type Router struct {
	ID         string // node identifier ("N123")
	Interfaces []Interface
	Truth      *GroundTruth // nil when unknown
}

// Hostnames returns the router's distinct non-empty hostnames, in
// interface order. Routers have a handful of interfaces, so duplicates
// are eliminated with a linear scan rather than a per-call map — this
// runs once per router on every GroupBySuffix, the pipeline's grouping
// hot path.
func (r *Router) Hostnames() []string {
	var out []string
	for _, ifc := range r.Interfaces {
		if ifc.Hostname == "" {
			continue
		}
		dup := false
		for _, h := range out {
			if h == ifc.Hostname {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, ifc.Hostname)
		}
	}
	return out
}

// HasHostname reports whether any interface has a PTR hostname.
func (r *Router) HasHostname() bool {
	for _, ifc := range r.Interfaces {
		if ifc.Hostname != "" {
			return true
		}
	}
	return false
}

// Link is an inferred router-level adjacency (two routers that appeared
// consecutively in traceroute paths).
type Link struct {
	A, B string // router IDs
}

// Corpus is a router-level topology.
type Corpus struct {
	Name    string // e.g. "IPv4 Aug 2020"
	IPv6    bool
	Routers []*Router
	Links   []Link
	byID    map[string]*Router
	nbrs    map[string][]string
}

// NewCorpus returns an empty corpus with the given name.
func NewCorpus(name string, ipv6 bool) *Corpus {
	return &Corpus{
		Name: name, IPv6: ipv6,
		byID: make(map[string]*Router),
		nbrs: make(map[string][]string),
	}
}

// Add appends a router to the corpus. It returns an error on a duplicate
// or empty router ID.
func (c *Corpus) Add(r *Router) error {
	if r.ID == "" {
		return fmt.Errorf("itdk: router with empty ID")
	}
	if _, dup := c.byID[r.ID]; dup {
		return fmt.Errorf("itdk: duplicate router ID %s", r.ID)
	}
	c.byID[r.ID] = r
	c.Routers = append(c.Routers, r)
	return nil
}

// Router returns the router with the given ID, or nil.
func (c *Corpus) Router(id string) *Router { return c.byID[id] }

// AddLink records a router-level adjacency. Both endpoints must exist.
func (c *Corpus) AddLink(a, b string) error {
	if c.byID[a] == nil || c.byID[b] == nil {
		return fmt.Errorf("itdk: link references unknown router (%s, %s)", a, b)
	}
	if a == b {
		return fmt.Errorf("itdk: self-link on %s", a)
	}
	c.Links = append(c.Links, Link{A: a, B: b})
	c.nbrs[a] = append(c.nbrs[a], b)
	c.nbrs[b] = append(c.nbrs[b], a)
	return nil
}

// Neighbors returns the routers adjacent to id.
func (c *Corpus) Neighbors(id string) []string { return c.nbrs[id] }

// Len returns the number of routers in the corpus.
func (c *Corpus) Len() int { return len(c.Routers) }

// RouterHostname pairs a router with one of its hostnames, tagged with
// the registrable suffix the hostname falls under.
type RouterHostname struct {
	Router   *Router
	Hostname string
	Suffix   string
}

// SuffixGroup is the set of router hostnames under one registrable
// domain suffix — the unit over which Hoiho learns a naming convention.
type SuffixGroup struct {
	Suffix string
	Hosts  []RouterHostname
}

// GroupBySuffix partitions the corpus's hostnames by registrable domain
// suffix using the public suffix list, returning groups sorted by suffix.
// Hostnames equal to their suffix (no prefix to learn from) are skipped.
// The sorted order and the deterministic (corpus-order) Hosts slices are
// a contract: core.Run's parallel workers merge per-group results by
// group index, which is only reproducible because this ordering is.
func (c *Corpus) GroupBySuffix(list *psl.List) []*SuffixGroup {
	groups := make(map[string]*SuffixGroup)
	for _, r := range c.Routers {
		for _, hn := range r.Hostnames() {
			suffix := list.RegistrableDomain(hn)
			if suffix == "" || strings.EqualFold(hn, suffix) {
				continue
			}
			g := groups[suffix]
			if g == nil {
				g = &SuffixGroup{Suffix: suffix}
				groups[suffix] = g
			}
			g.Hosts = append(g.Hosts, RouterHostname{Router: r, Hostname: hn, Suffix: suffix})
		}
	}
	out := make([]*SuffixGroup, 0, len(groups))
	for _, g := range groups {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Suffix < out[j].Suffix })
	return out
}

// Stats summarises a corpus in the shape of the paper's Table 1 rows.
type Stats struct {
	Routers      int
	WithHostname int
	WithTruth    int
}

// Stats computes corpus summary statistics.
func (c *Corpus) Stats() Stats {
	var s Stats
	s.Routers = len(c.Routers)
	for _, r := range c.Routers {
		if r.HasHostname() {
			s.WithHostname++
		}
		if r.Truth != nil {
			s.WithTruth++
		}
	}
	return s
}
