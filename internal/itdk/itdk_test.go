package itdk

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"

	"hoiho/internal/geo"
	"hoiho/internal/psl"
)

func mkRouter(t *testing.T, id string, addrs ...string) *Router {
	t.Helper()
	r := &Router{ID: id}
	for _, a := range addrs {
		r.Interfaces = append(r.Interfaces, Interface{Addr: netip.MustParseAddr(a)})
	}
	return r
}

func TestCorpusAdd(t *testing.T) {
	c := NewCorpus("test", false)
	if err := c.Add(mkRouter(t, "N1", "192.0.2.1")); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(mkRouter(t, "N1", "192.0.2.2")); err == nil {
		t.Error("duplicate ID should error")
	}
	if err := c.Add(&Router{}); err == nil {
		t.Error("empty ID should error")
	}
	if c.Router("N1") == nil || c.Router("N2") != nil {
		t.Error("Router lookup wrong")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestHostnames(t *testing.T) {
	r := mkRouter(t, "N1", "192.0.2.1", "192.0.2.2", "192.0.2.3")
	r.Interfaces[0].Hostname = "a.example.com"
	r.Interfaces[2].Hostname = "a.example.com" // duplicate
	hs := r.Hostnames()
	if len(hs) != 1 || hs[0] != "a.example.com" {
		t.Errorf("Hostnames = %v", hs)
	}
	if !r.HasHostname() {
		t.Error("HasHostname should be true")
	}
	if mkRouter(t, "N2", "192.0.2.9").HasHostname() {
		t.Error("router without PTR should report no hostname")
	}
}

func TestGroupBySuffix(t *testing.T) {
	list := psl.MustDefault()
	c := NewCorpus("test", false)
	r1 := mkRouter(t, "N1", "192.0.2.1", "192.0.2.2")
	r1.Interfaces[0].Hostname = "e0.cr1.lhr1.ntt.net"
	r1.Interfaces[1].Hostname = "e1.cr1.lhr1.ntt.net"
	r2 := mkRouter(t, "N2", "192.0.2.3")
	r2.Interfaces[0].Hostname = "gw.ccnw.net.au"
	r3 := mkRouter(t, "N3", "192.0.2.4")
	r3.Interfaces[0].Hostname = "ntt.net" // bare suffix: skipped
	for _, r := range []*Router{r1, r2, r3} {
		if err := c.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	groups := c.GroupBySuffix(list)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	if groups[0].Suffix != "ccnw.net.au" || groups[1].Suffix != "ntt.net" {
		t.Errorf("suffixes = %s, %s", groups[0].Suffix, groups[1].Suffix)
	}
	if len(groups[1].Hosts) != 2 {
		t.Errorf("ntt.net hosts = %d, want 2", len(groups[1].Hosts))
	}
}

func TestStats(t *testing.T) {
	c := NewCorpus("test", false)
	r1 := mkRouter(t, "N1", "192.0.2.1")
	r1.Interfaces[0].Hostname = "a.example.com"
	r1.Truth = &GroundTruth{City: "ashburn", Region: "va", Country: "us",
		Pos: geo.LatLong{Lat: 39.04, Long: -77.49}}
	r2 := mkRouter(t, "N2", "192.0.2.2")
	_ = c.Add(r1)
	_ = c.Add(r2)
	s := c.Stats()
	if s.Routers != 2 || s.WithHostname != 1 || s.WithTruth != 1 {
		t.Errorf("Stats = %+v", s)
	}
}

func TestRoundTrip(t *testing.T) {
	c := NewCorpus("rt", false)
	r1 := mkRouter(t, "N1", "192.0.2.1", "192.0.2.2")
	r1.Interfaces[0].Hostname = "e0.cr1.iad1.example.net"
	r1.Truth = &GroundTruth{City: "ashburn", Region: "va", Country: "us",
		Pos: geo.LatLong{Lat: 39.0438, Long: -77.4874}}
	r2 := mkRouter(t, "N2", "2001:db8::1")
	_ = c.Add(r1)
	_ = c.Add(r2)

	var buf bytes.Buffer
	if err := WriteNodes(&buf, c); err != nil {
		t.Fatal(err)
	}
	if err := WriteNames(&buf, c); err != nil {
		t.Fatal(err)
	}
	if err := WriteGeo(&buf, c); err != nil {
		t.Fatal(err)
	}

	got, err := ReadCorpus(&buf, "rt", false)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("round-trip Len = %d", got.Len())
	}
	gr := got.Router("N1")
	if gr == nil {
		t.Fatal("N1 missing after round trip")
	}
	if gr.Interfaces[0].Hostname != "e0.cr1.iad1.example.net" {
		t.Errorf("hostname lost: %+v", gr.Interfaces)
	}
	if gr.Truth == nil || gr.Truth.City != "ashburn" || gr.Truth.Region != "va" {
		t.Errorf("truth lost: %+v", gr.Truth)
	}
	if geo.DistanceKm(gr.Truth.Pos, r1.Truth.Pos) > 0.1 {
		t.Errorf("truth position drifted: %v", gr.Truth.Pos)
	}
}

func TestReadCorpusErrors(t *testing.T) {
	cases := []string{
		"node.name N9 192.0.2.1 host.example.com",        // unknown router
		"node N1: not-an-address",                        // bad addr
		"bogus N1",                                       // unknown record
		"node N1: 192.0.2.1\nnode.name N1 192.0.2.2 h.x", // unknown interface
		"node N1: 192.0.2.1\nnode.geo N1: x y a|b|c",     // bad lat
		"node N1: 192.0.2.1\nnode.geo N1: 1.0 2.0 nope",  // bad location
		"node N1: 192.0.2.1\nnode N1: 192.0.2.2",         // dup router
		"node.name too few",                              // short record
	}
	for _, in := range cases {
		if _, err := ReadCorpus(strings.NewReader(in), "x", false); err == nil {
			t.Errorf("input %q should fail to parse", in)
		}
	}
}

func TestReadCorpusSkipsComments(t *testing.T) {
	in := "# comment\n\nnode N1: 192.0.2.1\n"
	c, err := ReadCorpus(strings.NewReader(in), "x", false)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestHostnameLowercasedOnRead(t *testing.T) {
	in := "node N1: 192.0.2.1\nnode.name N1 192.0.2.1 CR1.LHR.Example.NET\n"
	c, err := ReadCorpus(strings.NewReader(in), "x", false)
	if err != nil {
		t.Fatal(err)
	}
	if hn := c.Router("N1").Interfaces[0].Hostname; hn != "cr1.lhr.example.net" {
		t.Errorf("hostname = %q", hn)
	}
}
