package itdk

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"

	"hoiho/internal/geo"
)

// The corpus file formats follow the ITDK's line-oriented layout:
//
//	nodes:  node N<id>:  <addr> <addr> ...
//	names:  node.name N<id> <addr> <hostname>
//	geo:    node.geo N<id>: <lat> <long> <city>|<region>|<country>
//
// Comment lines begin with '#'. WriteNodes/WriteNames/WriteGeo emit these
// formats; ReadCorpus consumes all three from a combined stream or from
// separate streams applied in order (nodes first).

// WriteNodes emits the corpus's routers and interface addresses.
func WriteNodes(w io.Writer, c *Corpus) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s: %d routers\n", c.Name, c.Len())
	for _, r := range c.Routers {
		fmt.Fprintf(bw, "node %s: ", r.ID)
		for i, ifc := range r.Interfaces {
			if i > 0 {
				bw.WriteByte(' ')
			}
			bw.WriteString(ifc.Addr.String())
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// WriteNames emits hostname records for interfaces with PTR records.
func WriteNames(w io.Writer, c *Corpus) error {
	bw := bufio.NewWriter(w)
	for _, r := range c.Routers {
		for _, ifc := range r.Interfaces {
			if ifc.Hostname != "" {
				fmt.Fprintf(bw, "node.name %s %s %s\n", r.ID, ifc.Addr, ifc.Hostname)
			}
		}
	}
	return bw.Flush()
}

// WriteGeo emits ground-truth records for routers that have them.
func WriteGeo(w io.Writer, c *Corpus) error {
	bw := bufio.NewWriter(w)
	for _, r := range c.Routers {
		if r.Truth == nil {
			continue
		}
		t := r.Truth
		fmt.Fprintf(bw, "node.geo %s: %.4f %.4f %s|%s|%s\n",
			r.ID, t.Pos.Lat, t.Pos.Long, t.City, t.Region, t.Country)
	}
	return bw.Flush()
}

// WriteLinks emits router-level adjacency records ("link N1 N2").
func WriteLinks(w io.Writer, c *Corpus) error {
	bw := bufio.NewWriter(w)
	for _, l := range c.Links {
		fmt.Fprintf(bw, "link %s %s\n", l.A, l.B)
	}
	return bw.Flush()
}

// ReadCorpus parses any mix of node, node.name, node.geo, and link
// records from r into a new corpus. node records must precede the
// records that reference them.
func ReadCorpus(r io.Reader, name string, ipv6 bool) (*Corpus, error) {
	c := NewCorpus(name, ipv6)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if err := parseRecord(c, text); err != nil {
			return nil, fmt.Errorf("itdk: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return c, nil
}

func parseRecord(c *Corpus, text string) error {
	fields := strings.Fields(text)
	switch fields[0] {
	case "node":
		if len(fields) < 2 {
			return fmt.Errorf("short node record")
		}
		id := strings.TrimSuffix(fields[1], ":")
		r := &Router{ID: id}
		for _, a := range fields[2:] {
			addr, err := netip.ParseAddr(a)
			if err != nil {
				return fmt.Errorf("bad address %q: %w", a, err)
			}
			r.Interfaces = append(r.Interfaces, Interface{Addr: addr})
		}
		return c.Add(r)
	case "node.name":
		if len(fields) != 4 {
			return fmt.Errorf("node.name wants 4 fields, got %d", len(fields))
		}
		r := c.Router(fields[1])
		if r == nil {
			return fmt.Errorf("node.name references unknown router %s", fields[1])
		}
		addr, err := netip.ParseAddr(fields[2])
		if err != nil {
			return fmt.Errorf("bad address %q: %w", fields[2], err)
		}
		for i := range r.Interfaces {
			if r.Interfaces[i].Addr == addr {
				r.Interfaces[i].Hostname = strings.ToLower(fields[3])
				return nil
			}
		}
		return fmt.Errorf("node.name references unknown interface %s on %s", addr, r.ID)
	case "node.geo":
		if len(fields) < 5 {
			return fmt.Errorf("node.geo wants 5 fields, got %d", len(fields))
		}
		// City names may contain spaces ("new york|ny|us"); everything
		// from the fifth field on is the location triple.
		fields[4] = strings.Join(fields[4:], " ")
		fields = fields[:5]
		id := strings.TrimSuffix(fields[1], ":")
		r := c.Router(id)
		if r == nil {
			return fmt.Errorf("node.geo references unknown router %s", id)
		}
		lat, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return fmt.Errorf("bad latitude: %w", err)
		}
		long, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return fmt.Errorf("bad longitude: %w", err)
		}
		parts := strings.Split(fields[4], "|")
		if len(parts) != 3 {
			return fmt.Errorf("bad location %q", fields[4])
		}
		r.Truth = &GroundTruth{
			City: parts[0], Region: parts[1], Country: parts[2],
			Pos: geo.LatLong{Lat: lat, Long: long},
		}
		return nil
	case "link":
		if len(fields) != 3 {
			return fmt.Errorf("link wants 3 fields, got %d", len(fields))
		}
		return c.AddLink(fields[1], fields[2])
	default:
		return fmt.Errorf("unknown record type %q", fields[0])
	}
}
