// Package psl implements the Mozilla Public Suffix List algorithm
// (paper §5.1.2). Hoiho groups router hostnames by their registrable
// domain suffix — the label immediately below an effective top-level
// domain — so that each operator's naming convention is learned over the
// hostnames that operator controls (cogentco.com, ccnw.net.au, ...).
//
// The rule semantics follow publicsuffix.org: a rule matches when its
// labels equal the rightmost labels of the domain; "*" matches exactly
// one label; exception rules beginning with "!" override wildcard rules;
// the prevailing rule is the matching rule with the most labels (with
// exceptions always prevailing); and if no rule matches the implicit
// rule "*" applies.
package psl

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"
)

// List is a parsed public suffix list.
type List struct {
	rules     map[string]ruleKind // key: rule labels joined by "."
	maxLabels int
}

type ruleKind uint8

const (
	ruleNormal ruleKind = iota
	ruleWildcard
	ruleException
)

// Parse reads a public suffix list in the standard text format: one rule
// per line, comments beginning with "//", blank lines ignored.
func Parse(r io.Reader) (*List, error) {
	l := &List{rules: make(map[string]ruleKind)}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "//") {
			continue
		}
		// Rules are the first whitespace-separated token.
		if i := strings.IndexAny(text, " \t"); i >= 0 {
			text = text[:i]
		}
		if err := l.addRule(text); err != nil {
			return nil, fmt.Errorf("psl: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return l, nil
}

// MustParse parses rules from a string, panicking on error; for tests.
func MustParse(rules string) *List {
	l, err := Parse(strings.NewReader(rules))
	if err != nil {
		panic(err)
	}
	return l
}

func (l *List) addRule(rule string) error {
	kind := ruleNormal
	if strings.HasPrefix(rule, "!") {
		kind = ruleException
		rule = rule[1:]
	} else if strings.HasPrefix(rule, "*.") {
		kind = ruleWildcard
		rule = rule[2:]
	} else if rule == "*" {
		return errors.New(`bare "*" rule not supported`)
	}
	rule = strings.ToLower(strings.Trim(rule, "."))
	if rule == "" {
		return errors.New("empty rule")
	}
	l.rules[rule] = kind
	if n := strings.Count(rule, ".") + 1; n+1 > l.maxLabels {
		l.maxLabels = n + 1 // +1 for possible wildcard label
	}
	return nil
}

// Len returns the number of rules in the list.
func (l *List) Len() int { return len(l.rules) }

// PublicSuffix returns the effective public suffix of domain per the PSL
// algorithm. The domain must be a hostname without a trailing dot; the
// result is always non-empty for a non-empty domain (the implicit "*"
// rule makes the rightmost label a public suffix when nothing matches).
func (l *List) PublicSuffix(domain string) string {
	domain = strings.ToLower(strings.Trim(domain, "."))
	if domain == "" || strings.Contains(domain, "..") {
		// Empty labels make the domain invalid.
		return ""
	}
	labels := strings.Split(domain, ".")

	bestLen := 0 // labels in prevailing suffix
	exception := false
	// Consider every suffix of the domain, longest rules prevail.
	for i := 0; i < len(labels); i++ {
		cand := strings.Join(labels[i:], ".")
		if kind, ok := l.rules[cand]; ok {
			n := len(labels) - i
			switch kind {
			case ruleException:
				// Exception: the public suffix is the rule with its
				// leftmost label removed.
				return strings.Join(labels[i+1:], ".")
			case ruleNormal:
				if n > bestLen {
					bestLen, exception = n, false
				}
			case ruleWildcard:
				// The wildcard rule itself (*.foo) matches bar.foo;
				// the matched suffix has one more label than the rule.
				if i > 0 && n+1 > bestLen {
					bestLen, exception = n+1, false
				}
			}
		}
	}
	_ = exception
	if bestLen == 0 {
		bestLen = 1 // implicit "*" rule
	}
	return strings.Join(labels[len(labels)-bestLen:], ".")
}

// RegistrableDomain returns the public suffix plus one label — the
// domain an operator registers, which Hoiho uses to group hostnames
// ("e0-0.cr1.lhr1.ntt.net" → "ntt.net"). It returns "" when the domain
// is itself a public suffix or empty.
func (l *List) RegistrableDomain(domain string) string {
	domain = strings.ToLower(strings.Trim(domain, "."))
	if domain == "" {
		return ""
	}
	suffix := l.PublicSuffix(domain)
	if suffix == "" || suffix == domain {
		return ""
	}
	rest := strings.TrimSuffix(domain, "."+suffix)
	labels := strings.Split(rest, ".")
	return labels[len(labels)-1] + "." + suffix
}
