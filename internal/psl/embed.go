package psl

import (
	_ "embed"
	"strings"
	"sync"
)

//go:embed data/public_suffix_list.dat
var embeddedList string

var (
	defaultOnce sync.Once
	defaultList *List
	defaultErr  error
)

// Default returns the list parsed from the embedded public suffix data —
// a curated subset of the Mozilla list covering the generic TLDs plus the
// multi-label and wildcard country suffixes exercised by the corpus.
func Default() (*List, error) {
	defaultOnce.Do(func() {
		defaultList, defaultErr = Parse(strings.NewReader(embeddedList))
	})
	return defaultList, defaultErr
}

// MustDefault is Default but panics on error; for tests and examples.
func MustDefault() *List {
	l, err := Default()
	if err != nil {
		panic(err)
	}
	return l
}
