package psl

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPublicSuffixBasic(t *testing.T) {
	l := MustDefault()
	cases := []struct {
		domain, want string
	}{
		{"ntt.net", "net"},
		{"e0-0.cr1.lhr1.ntt.net", "net"},
		{"cogentco.com", "com"},
		{"ccnw.net.au", "net.au"},
		{"router.ccnw.net.au", "net.au"},
		{"foo.co.uk", "co.uk"},
		{"foo.uk", "uk"},
		{"example.de", "de"},
		{"unknown-tld.zz", "zz"}, // implicit * rule
		{"COM", "com"},
		{"", ""},
	}
	for _, c := range cases {
		if got := l.PublicSuffix(c.domain); got != c.want {
			t.Errorf("PublicSuffix(%q) = %q, want %q", c.domain, got, c.want)
		}
	}
}

func TestPublicSuffixWildcardAndException(t *testing.T) {
	l := MustDefault()
	cases := []struct {
		domain, want string
	}{
		// *.ck: any single label under ck is a public suffix...
		{"foo.bar.ck", "bar.ck"},
		{"bar.ck", "bar.ck"},
		// ...except www.ck, which the exception rule carves out.
		{"www.ck", "ck"},
		{"sub.www.ck", "ck"},
		{"x.y.kawasaki.jp", "y.kawasaki.jp"},
		{"city.kawasaki.jp", "kawasaki.jp"},
		{"sub.city.kawasaki.jp", "kawasaki.jp"},
	}
	for _, c := range cases {
		if got := l.PublicSuffix(c.domain); got != c.want {
			t.Errorf("PublicSuffix(%q) = %q, want %q", c.domain, got, c.want)
		}
	}
}

func TestRegistrableDomain(t *testing.T) {
	l := MustDefault()
	cases := []struct {
		domain, want string
	}{
		{"e0-0.cr1.lhr1.ntt.net", "ntt.net"},
		{"ntt.net", "ntt.net"},
		{"net", ""}, // a public suffix has no registrable domain
		{"router.ccnw.net.au", "ccnw.net.au"},
		{"a.b.c.d.level3.net", "level3.net"},
		{"xe-0-0-0.gw1.sfo16.alter.net", "alter.net"},
		{"foo.co.uk", "foo.co.uk"},
		{"co.uk", ""},
		{"", ""},
		{"WWW.Example.COM", "example.com"},
	}
	for _, c := range cases {
		if got := l.RegistrableDomain(c.domain); got != c.want {
			t.Errorf("RegistrableDomain(%q) = %q, want %q", c.domain, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("*")); err == nil {
		t.Error("bare * rule should be rejected")
	}
	if _, err := Parse(strings.NewReader("!")); err == nil {
		t.Error("empty exception rule should be rejected")
	}
}

func TestParseCommentsAndWhitespace(t *testing.T) {
	l := MustParse(`
// a comment
com
net  // trailing junk after whitespace is ignored

`)
	if l.Len() != 2 {
		t.Errorf("Len() = %d, want 2", l.Len())
	}
	if got := l.PublicSuffix("example.net"); got != "net" {
		t.Errorf("PublicSuffix(example.net) = %q", got)
	}
}

func TestLongestRulePrevails(t *testing.T) {
	l := MustParse("uk\nco.uk")
	if got := l.PublicSuffix("x.co.uk"); got != "co.uk" {
		t.Errorf("longest rule should prevail, got %q", got)
	}
}

func TestRegistrableDomainProperties(t *testing.T) {
	l := MustDefault()
	f := func(a, b, c uint8) bool {
		// Compose random 3-label domains over a fixed alphabet of labels.
		labels := []string{"alpha", "beta", "gamma", "net", "com", "ntt", "core1"}
		domain := labels[int(a)%len(labels)] + "." + labels[int(b)%len(labels)] + "." + labels[int(c)%len(labels)]
		rd := l.RegistrableDomain(domain)
		if rd == "" {
			return true
		}
		// The registrable domain must be a suffix of the input and must
		// itself have the same registrable domain (idempotence).
		if !strings.HasSuffix(domain, rd) {
			return false
		}
		return l.RegistrableDomain(rd) == rd
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPublicSuffixNeverEmpty(t *testing.T) {
	l := MustDefault()
	for _, d := range []string{"a", "a.b", "a.b.c", "x.net"} {
		if got := l.PublicSuffix(d); got == "" {
			t.Errorf("PublicSuffix(%q) = empty", d)
		}
	}
	// Empty labels make a hostname invalid: no suffix, no registrable
	// domain.
	if got := l.PublicSuffix("weird..dots"); got != "" {
		t.Errorf("PublicSuffix(weird..dots) = %q, want empty", got)
	}
	if got := l.RegistrableDomain("weird..dots"); got != "" {
		t.Errorf("RegistrableDomain(weird..dots) = %q, want empty", got)
	}
}

func TestTrailingDots(t *testing.T) {
	l := MustDefault()
	if got := l.RegistrableDomain("ntt.net."); got != "ntt.net" {
		t.Errorf("trailing dot: got %q", got)
	}
	if got := l.PublicSuffix(".net"); got != "net" {
		t.Errorf("leading dot: got %q", got)
	}
}

func TestDefaultListSize(t *testing.T) {
	l := MustDefault()
	if l.Len() < 150 {
		t.Errorf("embedded list has %d rules, want >= 150", l.Len())
	}
}
