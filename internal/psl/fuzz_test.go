package psl

import (
	"strings"
	"testing"
)

// FuzzPublicSuffix: arbitrary domains must never panic, and the suffix
// must always be a trailing portion of the (normalised) input.
func FuzzPublicSuffix(f *testing.F) {
	f.Add("e0-0.cr1.lhr1.ntt.net")
	f.Add("ccnw.net.au")
	f.Add("...")
	f.Add("")
	f.Add("sub.www.ck")
	f.Add("UPPER.Case.COM.")
	f.Fuzz(func(t *testing.T, domain string) {
		l := MustDefault()
		suffix := l.PublicSuffix(domain)
		norm := strings.ToLower(strings.Trim(domain, "."))
		if suffix != "" && !strings.HasSuffix(norm, suffix) {
			t.Fatalf("PublicSuffix(%q) = %q is not a suffix of %q", domain, suffix, norm)
		}
		rd := l.RegistrableDomain(domain)
		if rd != "" {
			if !strings.HasSuffix(norm, rd) {
				t.Fatalf("RegistrableDomain(%q) = %q is not a suffix", domain, rd)
			}
			if l.RegistrableDomain(rd) != rd {
				t.Fatalf("RegistrableDomain is not idempotent on %q", rd)
			}
		}
	})
}

// FuzzParse: arbitrary rule files must never panic.
func FuzzParse(f *testing.F) {
	f.Add("com\nnet\n*.ck\n!www.ck\n")
	f.Add("// comment only\n")
	f.Add("*")
	f.Add("!")
	f.Fuzz(func(t *testing.T, rules string) {
		l, err := Parse(strings.NewReader(rules))
		if err != nil {
			return
		}
		_ = l.PublicSuffix("a.b.example.com")
	})
}
