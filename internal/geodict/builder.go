package geodict

import (
	"fmt"
	"strings"
)

// Builder assembles a Dictionary programmatically. The zero value is not
// usable; obtain one from NewBuilder. The synthetic topology generator
// uses a Builder to register codes for places the embedded data lacks.
type Builder struct {
	d *Dictionary
}

// NewBuilder returns a Builder wrapping a fresh empty Dictionary.
func NewBuilder() *Builder {
	return &Builder{d: NewDictionary()}
}

// Dictionary returns the dictionary under construction. The Builder may
// continue to be used afterwards; the same dictionary is returned.
func (b *Builder) Dictionary() *Dictionary { return b.d }

// AddAirport registers an airport under its IATA (and, when non-empty,
// ICAO) code. Multiple airports may share an IATA code only through
// separate AddAirport calls with distinct locations (used to model
// metro codes); duplicate exact registrations are rejected.
func (b *Builder) AddAirport(iata, icao string, loc Location) error {
	iata = strings.ToLower(iata)
	icao = strings.ToLower(icao)
	if len(iata) != 3 {
		return fmt.Errorf("geodict: IATA code %q must be 3 letters", iata)
	}
	if icao != "" && len(icao) != 4 {
		return fmt.Errorf("geodict: ICAO code %q must be 4 letters", icao)
	}
	a := &Airport{IATA: iata, ICAO: icao, Loc: loc}
	for _, prev := range b.d.iata[iata] {
		if prev.Loc.SameCity(&a.Loc) {
			return fmt.Errorf("geodict: duplicate airport %s for %s", iata, loc.String())
		}
	}
	b.d.iata[iata] = append(b.d.iata[iata], a)
	if icao != "" {
		if _, dup := b.d.icao[icao]; dup {
			return fmt.Errorf("geodict: duplicate ICAO code %s", icao)
		}
		b.d.icao[icao] = a
	}
	return nil
}

// AddLocode registers a 5-letter UN/LOCODE.
func (b *Builder) AddLocode(code string, loc Location) error {
	code = strings.ToLower(code)
	if len(code) != 5 {
		return fmt.Errorf("geodict: LOCODE %q must be 5 letters", code)
	}
	if _, dup := b.d.locode[code]; dup {
		return fmt.Errorf("geodict: duplicate LOCODE %s", code)
	}
	if loc.Country != "" && code[:2] != loc.Country {
		return fmt.Errorf("geodict: LOCODE %s does not begin with country %s", code, loc.Country)
	}
	b.d.locode[code] = &Code{Code: code, Loc: loc}
	return nil
}

// AddCLLI registers a 6-letter CLLI prefix.
func (b *Builder) AddCLLI(prefix string, loc Location) error {
	prefix = strings.ToLower(prefix)
	if len(prefix) != 6 {
		return fmt.Errorf("geodict: CLLI prefix %q must be 6 letters", prefix)
	}
	if _, dup := b.d.clli[prefix]; dup {
		return fmt.Errorf("geodict: duplicate CLLI prefix %s", prefix)
	}
	b.d.clli[prefix] = &Code{Code: prefix, Loc: loc}
	return nil
}

// AddPlace registers a city or town name.
func (b *Builder) AddPlace(loc Location) error {
	if loc.City == "" {
		return fmt.Errorf("geodict: place with empty city name")
	}
	key := NormalizeName(loc.City)
	l := loc
	for _, prev := range b.d.places[key] {
		if prev.SameCity(&l) {
			return fmt.Errorf("geodict: duplicate place %s", loc.String())
		}
	}
	b.d.places[key] = append(b.d.places[key], &l)
	return nil
}

// AddFacility registers a colocation facility.
func (b *Builder) AddFacility(name, address string, loc Location) error {
	if name == "" {
		return fmt.Errorf("geodict: facility with empty name")
	}
	b.d.facilities = append(b.d.facilities, &Facility{
		Name: strings.ToLower(name), Address: strings.ToLower(address), Loc: loc,
	})
	return nil
}

// AddCountry registers an ISO-3166 country.
func (b *Builder) AddCountry(alpha2, alpha3, name string) error {
	alpha2 = strings.ToLower(alpha2)
	alpha3 = strings.ToLower(alpha3)
	if len(alpha2) != 2 {
		return fmt.Errorf("geodict: country code %q must be 2 letters", alpha2)
	}
	if _, dup := b.d.countries[alpha2]; dup {
		return fmt.Errorf("geodict: duplicate country %s", alpha2)
	}
	b.d.countries[alpha2] = name
	if alpha3 != "" {
		b.d.alpha3[alpha3] = alpha2
	}
	if name != "" {
		b.d.countryIx[NormalizeName(name)] = alpha2
	}
	return nil
}

// AddState registers a state/province code within a country.
func (b *Builder) AddState(country, code, name string) error {
	country = strings.ToLower(country)
	code = strings.ToLower(code)
	if country == "" || code == "" {
		return fmt.Errorf("geodict: state requires country and code")
	}
	m := b.d.states[country]
	if m == nil {
		m = make(map[string]string)
		b.d.states[country] = m
	}
	if _, dup := m[code]; dup {
		return fmt.Errorf("geodict: duplicate state %s-%s", country, code)
	}
	m[code] = name
	if name != "" {
		key := NormalizeName(name)
		b.d.stateIx[key] = append(b.d.stateIx[key], StateRef{Country: country, Code: code})
	}
	return nil
}

// PlaceLocation finds the registered place exactly matching the triple,
// used when joining other data sources against the place dictionary.
func (b *Builder) PlaceLocation(city, region, country string) (*Location, bool) {
	for _, l := range b.d.places[NormalizeName(city)] {
		if l.City == city && l.Region == region && l.Country == country {
			return l, true
		}
	}
	return nil, false
}
