// Package geodict implements the reference location dictionary of the
// Hoiho geolocation method (paper §5.1.1): IATA and ICAO airport codes,
// UN/LOCODEs, CLLI prefixes, city and town names, colocation facilities,
// and ISO-3166 country and state codes — each annotated with lat/long
// coordinates so that delay measurements can test whether a candidate
// geohint is physically plausible.
//
// The embedded datasets are curated subsets of the public sources the
// paper uses (OurAirports, GeoNames, UN/LOCODE, PeeringDB) plus a
// rule-compatible substitute for the licensed iconectiv CLLI table. A
// Builder allows programmatic extension, which the synthetic topology
// generator uses to register additional codes.
package geodict

import (
	"fmt"
	"sort"
	"strings"

	"hoiho/internal/geo"
)

// HintType identifies the dictionary that interprets a geohint.
type HintType int

// The geohint types the paper's method distinguishes (§2).
const (
	HintNone     HintType = iota
	HintIATA              // 3-letter airport / metropolitan-area code
	HintICAO              // 4-letter structured airport code
	HintLocode            // 5-letter UN/LOCODE (country + location)
	HintCLLI              // 6-letter CLLI prefix (city + state/country)
	HintPlace             // city or town name
	HintFacility          // facility name or street address
	HintCountry           // country name or ISO-3166 code
	HintState             // state/province name or code
)

var hintNames = map[HintType]string{
	HintNone:     "none",
	HintIATA:     "iata",
	HintICAO:     "icao",
	HintLocode:   "locode",
	HintCLLI:     "clli",
	HintPlace:    "place",
	HintFacility: "facility",
	HintCountry:  "country",
	HintState:    "state",
}

// String returns the lower-case name of the hint type.
func (t HintType) String() string {
	if s, ok := hintNames[t]; ok {
		return s
	}
	return fmt.Sprintf("hinttype(%d)", int(t))
}

// Location is a geographic place a geohint can resolve to.
type Location struct {
	City       string // lower-case city or town name ("ashburn")
	Region     string // state/province code where applicable ("va")
	Country    string // ISO-3166 alpha-2 country code ("us")
	Pos        geo.LatLong
	Population int // resident population; 0 when unknown
}

// Key returns a canonical "city|region|country" identity string.
func (l *Location) Key() string {
	return l.City + "|" + l.Region + "|" + l.Country
}

// String renders the location in "City, REGION, CC" form.
func (l *Location) String() string {
	parts := []string{strings.Title(l.City)} //nolint:staticcheck // ASCII place names only
	if l.Region != "" {
		parts = append(parts, strings.ToUpper(l.Region))
	}
	parts = append(parts, strings.ToUpper(l.Country))
	return strings.Join(parts, ", ")
}

// SameCity reports whether two locations denote the same city.
func (l *Location) SameCity(o *Location) bool {
	return l != nil && o != nil && l.City == o.City && l.Region == o.Region && l.Country == o.Country
}

// Facility is a colocation facility record in the shape of PeeringDB.
type Facility struct {
	Name    string // facility name ("equinix dc1")
	Address string // street address ("21715 filigree ct")
	Loc     Location
}

// Airport is an airport (or IATA metropolitan-area) record.
type Airport struct {
	IATA string // 3-letter code; may be a metro city code
	ICAO string // 4-letter code; empty for metro codes
	Loc  Location
}

// Code is a coded dictionary entry (LOCODE or CLLI prefix).
type Code struct {
	Code string
	Loc  Location
}

// Dictionary is the assembled reference location dictionary.
type Dictionary struct {
	iata       map[string][]*Airport
	icao       map[string]*Airport
	locode     map[string]*Code
	clli       map[string]*Code
	places     map[string][]*Location // normalized name -> locations
	facilities []*Facility
	countries  map[string]string            // alpha2 -> name
	alpha3     map[string]string            // alpha3 -> alpha2
	countryIx  map[string]string            // normalized name -> alpha2
	states     map[string]map[string]string // country -> code -> name
	stateIx    map[string][]StateRef        // normalized name -> refs
}

// StateRef names a state within a country.
type StateRef struct {
	Country string
	Code    string
}

// NewDictionary returns an empty dictionary ready for population via a
// Builder. Most callers want Default instead.
func NewDictionary() *Dictionary {
	return &Dictionary{
		iata:      make(map[string][]*Airport),
		icao:      make(map[string]*Airport),
		locode:    make(map[string]*Code),
		clli:      make(map[string]*Code),
		places:    make(map[string][]*Location),
		countries: make(map[string]string),
		alpha3:    make(map[string]string),
		countryIx: make(map[string]string),
		states:    make(map[string]map[string]string),
		stateIx:   make(map[string][]StateRef),
	}
}

// IATA returns the airports registered under a 3-letter code, or nil.
func (d *Dictionary) IATA(code string) []*Airport { return d.iata[strings.ToLower(code)] }

// ICAO returns the airport registered under a 4-letter ICAO code, or nil.
func (d *Dictionary) ICAO(code string) *Airport { return d.icao[strings.ToLower(code)] }

// Locode returns the location registered under a 5-letter LOCODE, or nil.
func (d *Dictionary) Locode(code string) *Code { return d.locode[strings.ToLower(code)] }

// CLLI returns the location registered under a 6-letter CLLI prefix.
func (d *Dictionary) CLLI(prefix string) *Code { return d.clli[strings.ToLower(prefix)] }

// Place returns the locations whose normalized name matches name.
func (d *Dictionary) Place(name string) []*Location { return d.places[NormalizeName(name)] }

// Facilities returns all facility records.
func (d *Dictionary) Facilities() []*Facility { return d.facilities }

// FacilityByAddress returns facilities whose normalized street address
// begins with the normalized token (e.g. "529bryant" matches the record
// for "529 bryant st"). Tokens shorter than 4 characters never match.
func (d *Dictionary) FacilityByAddress(token string) []*Facility {
	tok := NormalizeName(token)
	if len(tok) < 4 || !containsDigit(tok) {
		return nil
	}
	var out []*Facility
	for _, f := range d.facilities {
		addr := NormalizeName(f.Address)
		if strings.HasPrefix(addr, tok) {
			out = append(out, f)
		}
	}
	return out
}

// HasFacility reports whether any facility is present in the given city.
func (d *Dictionary) HasFacility(city, region, country string) bool {
	for _, f := range d.facilities {
		if f.Loc.City == city && f.Loc.Country == country &&
			(region == "" || f.Loc.Region == "" || f.Loc.Region == region) {
			return true
		}
	}
	return false
}

// CountryName returns the name for an alpha-2 code, and whether it exists.
func (d *Dictionary) CountryName(alpha2 string) (string, bool) {
	n, ok := d.countries[strings.ToLower(alpha2)]
	return n, ok
}

// CountryCode canonicalises a country token — an alpha-2 code, alpha-3
// code, common alias ("uk"), or full name — to its ISO-3166 alpha-2 code.
func (d *Dictionary) CountryCode(token string) (string, bool) {
	t := strings.ToLower(strings.TrimSpace(token))
	if alias, ok := countryAliases[t]; ok {
		t = alias
	}
	if _, ok := d.countries[t]; ok {
		return t, true
	}
	if a2, ok := d.alpha3[t]; ok {
		return a2, true
	}
	if a2, ok := d.countryIx[NormalizeName(t)]; ok {
		return a2, true
	}
	return "", false
}

// CountryEquivalent reports whether a token found in a hostname denotes
// the ISO-3166 alpha-2 country — e.g. "uk" ≡ "gb" (paper §5.2).
func (d *Dictionary) CountryEquivalent(token, alpha2 string) bool {
	code, ok := d.CountryCode(token)
	return ok && code == strings.ToLower(alpha2)
}

// StateName resolves a state code within a country.
func (d *Dictionary) StateName(country, code string) (string, bool) {
	m := d.states[strings.ToLower(country)]
	if m == nil {
		return "", false
	}
	n, ok := m[strings.ToLower(code)]
	return n, ok
}

// StateRefs returns the states whose code or normalized name matches the
// token, across all countries.
func (d *Dictionary) StateRefs(token string) []StateRef {
	t := strings.ToLower(strings.TrimSpace(token))
	var out []StateRef
	for country, m := range d.states {
		if _, ok := m[t]; ok {
			out = append(out, StateRef{Country: country, Code: t})
		}
	}
	out = append(out, d.stateIx[NormalizeName(t)]...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Country != out[j].Country {
			return out[i].Country < out[j].Country
		}
		return out[i].Code < out[j].Code
	})
	return dedupeStateRefs(out)
}

// StateEquivalent reports whether a token denotes the (country, region)
// state — matching either the code or the full name.
func (d *Dictionary) StateEquivalent(token, country, region string) bool {
	t := strings.ToLower(strings.TrimSpace(token))
	if t == strings.ToLower(region) {
		return true
	}
	if name, ok := d.StateName(country, region); ok {
		if NormalizeName(t) == NormalizeName(name) {
			return true
		}
		// The token may be an alternate code with the same name,
		// e.g. "eng" and "en" both denote England.
		if n2, ok := d.StateName(country, t); ok && NormalizeName(n2) == NormalizeName(name) {
			return true
		}
	}
	return false
}

// Airports returns every airport record, sorted by IATA code.
func (d *Dictionary) Airports() []*Airport {
	var out []*Airport
	for _, as := range d.iata {
		out = append(out, as...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].IATA < out[j].IATA })
	return out
}

// Places returns every place record, sorted by key.
func (d *Dictionary) Places() []*Location {
	var out []*Location
	for _, ls := range d.places {
		out = append(out, ls...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Locodes returns every LOCODE record, sorted by code.
func (d *Dictionary) Locodes() []*Code {
	out := make([]*Code, 0, len(d.locode))
	for _, c := range d.locode {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

// CLLIs returns every CLLI prefix record, sorted by prefix.
func (d *Dictionary) CLLIs() []*Code {
	out := make([]*Code, 0, len(d.clli))
	for _, c := range d.clli {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

// Stats summarises dictionary contents for reporting.
type Stats struct {
	Airports   int
	ICAOs      int
	Locodes    int
	CLLIs      int
	Places     int
	Facilities int
	Countries  int
	States     int
}

// Stats returns entry counts per dictionary.
func (d *Dictionary) Stats() Stats {
	var s Stats
	for _, as := range d.iata {
		s.Airports += len(as)
	}
	s.ICAOs = len(d.icao)
	s.Locodes = len(d.locode)
	s.CLLIs = len(d.clli)
	for _, ls := range d.places {
		s.Places += len(ls)
	}
	s.Facilities = len(d.facilities)
	s.Countries = len(d.countries)
	for _, m := range d.states {
		s.States += len(m)
	}
	return s
}

// countryAliases maps common non-ISO country tokens to alpha-2 codes.
var countryAliases = map[string]string{
	"uk": "gb", // the paper's GB≡UK equivalence
	"el": "gr",
}

func containsDigit(s string) bool {
	for _, r := range s {
		if r >= '0' && r <= '9' {
			return true
		}
	}
	return false
}

func dedupeStateRefs(refs []StateRef) []StateRef {
	out := refs[:0]
	seen := make(map[StateRef]bool, len(refs))
	for _, r := range refs {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}
