package geodict

import (
	"strings"
	"testing"
	"testing/quick"

	"hoiho/internal/geo"
)

func TestDefaultLoads(t *testing.T) {
	d, err := Default()
	if err != nil {
		t.Fatalf("Default() error: %v", err)
	}
	s := d.Stats()
	if s.Airports < 200 {
		t.Errorf("airports = %d, want >= 200", s.Airports)
	}
	if s.Places < 250 {
		t.Errorf("places = %d, want >= 250", s.Places)
	}
	if s.Locodes < 150 {
		t.Errorf("locodes = %d, want >= 150", s.Locodes)
	}
	if s.CLLIs < 120 {
		t.Errorf("cllis = %d, want >= 120", s.CLLIs)
	}
	if s.Facilities < 40 {
		t.Errorf("facilities = %d, want >= 40", s.Facilities)
	}
	if s.Countries < 180 {
		t.Errorf("countries = %d, want >= 180", s.Countries)
	}
	if s.States < 70 {
		t.Errorf("states = %d, want >= 70", s.States)
	}
}

func TestIATALookup(t *testing.T) {
	d := MustDefault()
	// The "ash" collision the paper hinges on: the IATA dictionary maps it
	// to Nashua, NH, not Ashburn, VA.
	as := d.IATA("ash")
	if len(as) != 1 {
		t.Fatalf("IATA(ash) = %d entries, want 1", len(as))
	}
	if as[0].Loc.City != "nashua" || as[0].Loc.Region != "nh" {
		t.Errorf("IATA(ash) = %s, want nashua NH", as[0].Loc.String())
	}
	if got := d.IATA("LHR"); len(got) != 1 || got[0].Loc.City != "london" {
		t.Errorf("IATA(LHR) should be case-insensitive and map to london")
	}
	if d.IATA("zzz") != nil {
		t.Error("IATA(zzz) should be nil")
	}
	// Collision codes the paper cites as chance matches.
	for _, code := range []string{"gig", "eth", "cpe", "act", "cix", "lvs", "tor", "tok", "ldn", "ntt"} {
		if d.IATA(code) == nil {
			t.Errorf("collision code %q missing from IATA dictionary", code)
		}
	}
}

func TestICAOLookup(t *testing.T) {
	d := MustDefault()
	a := d.ICAO("egll")
	if a == nil || a.IATA != "lhr" {
		t.Fatalf("ICAO(egll) = %+v, want lhr", a)
	}
	if prg := d.ICAO("lkpr"); prg == nil || prg.Loc.City != "prague" {
		t.Error("ICAO(lkpr) should be prague")
	}
	if lax := d.ICAO("klax"); lax == nil || lax.Loc.City != "los angeles" {
		t.Error("ICAO(klax) should be los angeles")
	}
}

func TestLocodeLookup(t *testing.T) {
	d := MustDefault()
	c := d.Locode("usqas")
	if c == nil || c.Loc.City != "ashburn" {
		t.Fatalf("Locode(usqas) = %+v, want ashburn", c)
	}
	// jptky is Tokuyama in the real dictionary (operators override it to
	// mean Tokyo — that's stage-4 learning, not the dictionary).
	if c := d.Locode("jptky"); c == nil || c.Loc.City != "tokuyama" {
		t.Errorf("Locode(jptky) should be tokuyama")
	}
	if c := d.Locode("gblon"); c == nil || c.Loc.City != "london" || c.Loc.Country != "gb" {
		t.Errorf("Locode(gblon) should be london gb")
	}
}

func TestCLLILookup(t *testing.T) {
	d := MustDefault()
	cases := map[string]string{
		"asbnva": "ashburn",
		"snjsca": "san jose",
		"rcmdva": "richmond",
		"nwrknj": "newark",
		"londen": "london",
		"kslrml": "kuala selangor",
		"milnit": "milan",
	}
	for prefix, city := range cases {
		c := d.CLLI(prefix)
		if c == nil {
			t.Errorf("CLLI(%s) missing", prefix)
			continue
		}
		if c.Loc.City != city {
			t.Errorf("CLLI(%s) = %s, want %s", prefix, c.Loc.City, city)
		}
	}
	// NTT's made-up Milan code must NOT be in the dictionary.
	if d.CLLI("mlanit") != nil {
		t.Error("mlanit is an operator-invented code and must not be in the dictionary")
	}
}

func TestPlaceLookupAmbiguity(t *testing.T) {
	d := MustDefault()
	ws := d.Place("washington")
	if len(ws) < 5 {
		t.Errorf("Place(washington) = %d entries, want several (paper: 10)", len(ws))
	}
	ash := d.Place("ashburn")
	if len(ash) != 2 {
		t.Errorf("Place(ashburn) = %d entries, want 2 (paper: 2)", len(ash))
	}
	// Multi-word names match in normalized form.
	if len(d.Place("fortcollins")) != 1 {
		t.Error("Place(fortcollins) should match fort collins")
	}
	if len(d.Place("Fort Collins")) != 1 {
		t.Error("Place(Fort Collins) should normalize")
	}
	if d.Place("atlantis") != nil {
		t.Error("Place(atlantis) should be nil")
	}
}

func TestFacilityByAddress(t *testing.T) {
	d := MustDefault()
	fs := d.FacilityByAddress("529bryant")
	if len(fs) != 1 || fs[0].Loc.City != "palo alto" {
		t.Fatalf("FacilityByAddress(529bryant) = %v", fs)
	}
	if fs := d.FacilityByAddress("1118th"); len(fs) != 1 || fs[0].Loc.City != "new york" {
		t.Errorf("FacilityByAddress(1118th) = %v", fs)
	}
	// Tokens without digits or too short must not match (avoids matching
	// every word in an address).
	if d.FacilityByAddress("ave") != nil {
		t.Error("short token should not match")
	}
	if d.FacilityByAddress("filigree") != nil {
		t.Error("token without digit should not match an address")
	}
}

func TestHasFacility(t *testing.T) {
	d := MustDefault()
	if !d.HasFacility("ashburn", "va", "us") {
		t.Error("ashburn should have a facility")
	}
	if !d.HasFacility("milan", "", "it") {
		t.Error("milan should have a facility")
	}
	if d.HasFacility("nashua", "nh", "us") {
		t.Error("nashua should not have a facility")
	}
}

func TestCountryCode(t *testing.T) {
	d := MustDefault()
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"us", "us", true},
		{"US", "us", true},
		{"gb", "gb", true},
		{"uk", "gb", true}, // paper: UK ≡ GB
		{"aus", "au", true},
		{"usa", "us", true},
		{"germany", "de", true},
		{"United States", "us", true},
		{"xx", "", false},
		{"", "", false},
	}
	for _, c := range cases {
		got, ok := d.CountryCode(c.in)
		if ok != c.ok || got != c.want {
			t.Errorf("CountryCode(%q) = %q,%v want %q,%v", c.in, got, ok, c.want, c.ok)
		}
	}
	if !d.CountryEquivalent("uk", "gb") {
		t.Error("uk should be equivalent to gb")
	}
	if d.CountryEquivalent("uk", "us") {
		t.Error("uk should not be equivalent to us")
	}
}

func TestStates(t *testing.T) {
	d := MustDefault()
	if n, ok := d.StateName("us", "va"); !ok || n != "virginia" {
		t.Errorf("StateName(us,va) = %q,%v", n, ok)
	}
	if _, ok := d.StateName("us", "zz"); ok {
		t.Error("StateName(us,zz) should not exist")
	}
	refs := d.StateRefs("wa")
	// "wa" is both Washington (US) and Western Australia (AU).
	if len(refs) < 2 {
		t.Errorf("StateRefs(wa) = %v, want both us and au", refs)
	}
	if !d.StateEquivalent("va", "us", "va") {
		t.Error("va should match va")
	}
	if !d.StateEquivalent("virginia", "us", "va") {
		t.Error("virginia should match va by name")
	}
	if !d.StateEquivalent("eng", "gb", "en") {
		t.Error("eng should match en (both England)")
	}
	if d.StateEquivalent("tx", "us", "va") {
		t.Error("tx should not match va")
	}
	if d.StateEquivalent("queensland", "au", "nsw") {
		t.Error("queensland should not match nsw")
	}
	if !d.StateEquivalent("qld", "au", "qld") {
		t.Error("qld should match qld")
	}
}

func TestNormalizeName(t *testing.T) {
	cases := map[string]string{
		"Fort Collins":      "fortcollins",
		"St. Louis":         "stlouis",
		"111 8th Ave":       "1118thave",
		"SÃO":               "so", // non-ASCII dropped
		"new-york":          "newyork",
		"":                  "",
		"Frankfurt am Main": "frankfurtammain",
	}
	for in, want := range cases {
		if got := NormalizeName(in); got != want {
			t.Errorf("NormalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNormalizeNameProperty(t *testing.T) {
	f := func(s string) bool {
		n := NormalizeName(s)
		// Idempotent and only lower-case alphanumerics.
		if NormalizeName(n) != n {
			return false
		}
		for _, r := range n {
			if !(r >= 'a' && r <= 'z') && !(r >= '0' && r <= '9') {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitWords(t *testing.T) {
	got := SplitWords("New York")
	if len(got) != 2 || got[0] != "new" || got[1] != "york" {
		t.Errorf("SplitWords(New York) = %v", got)
	}
	if got := SplitWords("st-louis"); len(got) != 2 {
		t.Errorf("SplitWords(st-louis) = %v", got)
	}
	if got := SplitWords(""); len(got) != 0 {
		t.Errorf("SplitWords('') = %v", got)
	}
}

func TestLocationString(t *testing.T) {
	l := Location{City: "ashburn", Region: "va", Country: "us"}
	if got := l.String(); got != "Ashburn, VA, US" {
		t.Errorf("String() = %q", got)
	}
	l2 := Location{City: "london", Country: "gb"}
	if got := l2.String(); got != "London, GB" {
		t.Errorf("String() = %q", got)
	}
}

func TestLocationKeyUnique(t *testing.T) {
	a := Location{City: "london", Country: "gb"}
	b := Location{City: "london", Region: "on", Country: "ca"}
	if a.Key() == b.Key() {
		t.Error("different cities must have different keys")
	}
}

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder()
	loc := Location{City: "x", Country: "us", Pos: geo.LatLong{Lat: 1, Long: 2}}
	if err := b.AddAirport("toolong", "", loc); err == nil {
		t.Error("AddAirport should reject non-3-letter codes")
	}
	if err := b.AddAirport("abc", "bad", loc); err == nil {
		t.Error("AddAirport should reject non-4-letter ICAO")
	}
	if err := b.AddAirport("abc", "kabc", loc); err != nil {
		t.Errorf("AddAirport: %v", err)
	}
	if err := b.AddAirport("abc", "", loc); err == nil {
		t.Error("duplicate airport should be rejected")
	}
	if err := b.AddLocode("usx", loc); err == nil {
		t.Error("AddLocode should reject short codes")
	}
	if err := b.AddLocode("frxyz", loc); err == nil {
		t.Error("AddLocode should reject country mismatch")
	}
	if err := b.AddLocode("usxyz", loc); err != nil {
		t.Errorf("AddLocode: %v", err)
	}
	if err := b.AddLocode("usxyz", loc); err == nil {
		t.Error("duplicate LOCODE should be rejected")
	}
	if err := b.AddCLLI("abcd", loc); err == nil {
		t.Error("AddCLLI should reject non-6-letter prefixes")
	}
	if err := b.AddCLLI("abcdef", loc); err != nil {
		t.Errorf("AddCLLI: %v", err)
	}
	if err := b.AddCLLI("abcdef", loc); err == nil {
		t.Error("duplicate CLLI should be rejected")
	}
	if err := b.AddPlace(Location{}); err == nil {
		t.Error("AddPlace should reject empty city")
	}
	if err := b.AddCountry("usa", "", "x"); err == nil {
		t.Error("AddCountry should reject non-2-letter codes")
	}
	if err := b.AddState("", "x", "y"); err == nil {
		t.Error("AddState should reject empty country")
	}
}

func TestAirportsSorted(t *testing.T) {
	d := MustDefault()
	as := d.Airports()
	for i := 1; i < len(as); i++ {
		if as[i-1].IATA > as[i].IATA {
			t.Fatalf("Airports() not sorted at %d: %s > %s", i, as[i-1].IATA, as[i].IATA)
		}
	}
}

func TestLocodeCountryPrefixInvariant(t *testing.T) {
	d := MustDefault()
	for _, c := range d.Locodes() {
		if c.Loc.Country != "" && !strings.HasPrefix(c.Code, c.Loc.Country) {
			t.Errorf("LOCODE %s does not begin with its country %s", c.Code, c.Loc.Country)
		}
	}
}

func TestCLLIsHaveCoordinates(t *testing.T) {
	d := MustDefault()
	for _, c := range d.CLLIs() {
		if c.Loc.Pos.Lat == 0 && c.Loc.Pos.Long == 0 {
			t.Errorf("CLLI %s has no coordinates", c.Code)
		}
	}
}

func TestPaperExampleDistances(t *testing.T) {
	// Dictionary coordinates should reproduce the paper's geometry:
	// Ashburn VA and Nashua NH are several hundred km apart, which is
	// what makes the "ash" collision RTT-detectable.
	d := MustDefault()
	ashburn := d.Place("ashburn")[0]
	nashua := d.Place("nashua")[0]
	km := geo.DistanceKm(ashburn.Pos, nashua.Pos)
	if km < 500 || km > 800 {
		t.Errorf("ashburn-nashua distance = %.0f km, want ~650", km)
	}
}
