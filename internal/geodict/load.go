package geodict

import (
	"bufio"
	"embed"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"hoiho/internal/geo"
)

//go:embed data/*.tsv
var dataFS embed.FS

var (
	defaultOnce sync.Once
	defaultDict *Dictionary
	defaultErr  error
)

// Default returns the dictionary assembled from the embedded curated
// datasets. The dictionary is built once and shared; callers must not
// mutate it.
func Default() (*Dictionary, error) {
	defaultOnce.Do(func() {
		defaultDict, defaultErr = loadEmbedded()
	})
	return defaultDict, defaultErr
}

// MustDefault is Default but panics on error; for tests and examples.
func MustDefault() *Dictionary {
	d, err := Default()
	if err != nil {
		panic(err)
	}
	return d
}

func loadEmbedded() (*Dictionary, error) {
	b := NewBuilder()
	steps := []struct {
		file string
		fn   func(*Builder, io.Reader) error
	}{
		{"data/countries.tsv", loadCountries},
		{"data/states.tsv", loadStates},
		{"data/cities.tsv", loadCities},
		{"data/airports.tsv", loadAirports},
		{"data/locodes.tsv", loadLocodes},
		{"data/clli.tsv", loadCLLI},
		{"data/facilities.tsv", loadFacilities},
	}
	for _, s := range steps {
		f, err := dataFS.Open(s.file)
		if err != nil {
			return nil, fmt.Errorf("geodict: open %s: %w", s.file, err)
		}
		err = s.fn(b, f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("geodict: load %s: %w", s.file, err)
		}
	}
	return b.Dictionary(), nil
}

// forEachRecord streams non-comment, non-blank TSV lines to fn, reporting
// errors with one-based line numbers.
func forEachRecord(r io.Reader, want int, fn func(fields []string) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, "\t")
		if len(fields) != want {
			return fmt.Errorf("line %d: got %d fields, want %d", line, len(fields), want)
		}
		for i := range fields {
			fields[i] = strings.TrimSpace(fields[i])
		}
		if err := fn(fields); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
	}
	return sc.Err()
}

func parseLatLong(latS, lonS string) (geo.LatLong, error) {
	lat, err := strconv.ParseFloat(latS, 64)
	if err != nil {
		return geo.LatLong{}, fmt.Errorf("bad latitude %q: %w", latS, err)
	}
	lon, err := strconv.ParseFloat(lonS, 64)
	if err != nil {
		return geo.LatLong{}, fmt.Errorf("bad longitude %q: %w", lonS, err)
	}
	p := geo.LatLong{Lat: lat, Long: lon}
	if !p.Valid() {
		return geo.LatLong{}, fmt.Errorf("coordinates %v out of range", p)
	}
	return p, nil
}

// LoadCountries parses "alpha2 \t alpha3 \t name" records.
func loadCountries(b *Builder, r io.Reader) error {
	return forEachRecord(r, 3, func(f []string) error {
		return b.AddCountry(f[0], f[1], f[2])
	})
}

// LoadStates parses "country \t code \t name" records.
func loadStates(b *Builder, r io.Reader) error {
	return forEachRecord(r, 3, func(f []string) error {
		return b.AddState(f[0], f[1], f[2])
	})
}

// LoadCities parses "city \t region \t country \t lat \t long \t pop".
func loadCities(b *Builder, r io.Reader) error {
	return forEachRecord(r, 6, func(f []string) error {
		pos, err := parseLatLong(f[3], f[4])
		if err != nil {
			return err
		}
		pop, err := strconv.Atoi(f[5])
		if err != nil {
			return fmt.Errorf("bad population %q: %w", f[5], err)
		}
		return b.AddPlace(Location{
			City: f[0], Region: f[1], Country: f[2], Pos: pos, Population: pop,
		})
	})
}

// loadAirports parses "iata \t icao \t city \t region \t country \t lat \t long".
// Population is joined from the place dictionary when the city is known.
func loadAirports(b *Builder, r io.Reader) error {
	return forEachRecord(r, 7, func(f []string) error {
		pos, err := parseLatLong(f[5], f[6])
		if err != nil {
			return err
		}
		loc := Location{City: f[2], Region: f[3], Country: f[4], Pos: pos}
		if p, ok := b.PlaceLocation(f[2], f[3], f[4]); ok {
			loc.Population = p.Population
		}
		return b.AddAirport(f[0], f[1], loc)
	})
}

// loadLocodes parses "locode \t city \t region \t country \t lat \t long".
func loadLocodes(b *Builder, r io.Reader) error {
	return forEachRecord(r, 6, func(f []string) error {
		pos, err := parseLatLong(f[4], f[5])
		if err != nil {
			return err
		}
		loc := Location{City: f[1], Region: f[2], Country: f[3], Pos: pos}
		if p, ok := b.PlaceLocation(f[1], f[2], f[3]); ok {
			loc.Population = p.Population
		}
		return b.AddLocode(f[0], loc)
	})
}

// loadCLLI parses "prefix \t city \t region \t country"; coordinates are
// joined from the place dictionary (the paper joins iconectiv city names
// against GeoNames the same way).
func loadCLLI(b *Builder, r io.Reader) error {
	return forEachRecord(r, 4, func(f []string) error {
		p, ok := b.PlaceLocation(f[1], f[2], f[3])
		if !ok {
			return fmt.Errorf("CLLI %s: city %q (%s,%s) not in place dictionary", f[0], f[1], f[2], f[3])
		}
		return b.AddCLLI(f[0], *p)
	})
}

// loadFacilities parses "name \t address \t city \t region \t country \t lat \t long".
func loadFacilities(b *Builder, r io.Reader) error {
	return forEachRecord(r, 7, func(f []string) error {
		pos, err := parseLatLong(f[5], f[6])
		if err != nil {
			return err
		}
		loc := Location{City: f[2], Region: f[3], Country: f[4], Pos: pos}
		return b.AddFacility(f[0], f[1], loc)
	})
}
