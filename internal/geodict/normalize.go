package geodict

import "strings"

// NormalizeName canonicalises a place, country, or facility name for
// dictionary lookup: lower-case it and strip every character that is not
// a letter or digit, so "Fort Collins" → "fortcollins", "St. Louis" →
// "stlouis", and "111 8th Ave" → "1118thave". This mirrors how operators
// embed multi-word names in hostnames without separators.
func NormalizeName(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range strings.ToLower(s) {
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// SplitWords splits a place name into its constituent lower-case words,
// used by the abbreviation matcher's multi-word first-letter rule
// ("nyk" may abbreviate "new york", "nwk" may not).
func SplitWords(s string) []string {
	fields := strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !(r >= 'a' && r <= 'z') && !(r >= '0' && r <= '9')
	})
	return fields
}
