package hoiho_bench

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hoiho/internal/core"
	"hoiho/internal/geoloc"
	"hoiho/internal/itdk"
	"hoiho/internal/obs"
	"hoiho/internal/qlog"
	"hoiho/internal/rtt"
	"hoiho/internal/synth"
)

// goldenDir holds the committed golden corpus (a small seeded synthetic
// world written to the on-disk ITDK format) and the expected learned
// conventions. TestGoldenPipeline diffs the pipeline's output against it
// byte-for-byte; `go test -run TestGoldenPipeline -update` regenerates
// both after an intentional behaviour change.
const goldenDir = "testdata/golden"

var updateGolden = flag.Bool("update", false,
	"regenerate testdata/golden (corpus + expected conventions) instead of diffing")

// goldenParams is the fixed recipe behind the committed corpus: small
// enough to learn in well under a second, varied enough to exercise
// every stage (multiple convention styles, tiny operators, noise
// operators, a spoofing VP that CleanSpoofers removes).
func goldenParams() synth.Params {
	return synth.Params{
		Name:          "golden",
		Seed:          42,
		Operators:     8,
		Tiny:          4,
		Noise:         4,
		VPs:           10,
		SpoofVPs:      1,
		HostnameRate:  0.6,
		AnonymousFrac: 0.3,
		Delay:         rtt.DefaultDelayModel(),
		TracedVPsMax:  2,
		NoiseRouters:  10,
	}
}

// regenerateGolden rebuilds the committed corpus and expected output.
// The expected conventions are computed from the *reloaded* corpus (not
// the in-memory world), so the committed pair is exactly what the test
// will later reproduce.
func regenerateGolden(t *testing.T) {
	t.Helper()
	w, err := synth.Generate(goldenParams())
	if err != nil {
		t.Fatal(err)
	}
	w.CleanSpoofers()
	if err := os.MkdirAll(goldenDir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name string, fn func(*os.File) error) {
		f, err := os.Create(filepath.Join(goldenDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := fn(f); err != nil {
			f.Close()
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	write("corpus.nodes", func(f *os.File) error { return itdk.WriteNodes(f, w.Corpus) })
	write("corpus.names", func(f *os.File) error { return itdk.WriteNames(f, w.Corpus) })
	write("corpus.geo", func(f *os.File) error { return itdk.WriteGeo(f, w.Corpus) })
	write("rtt.matrix", func(f *os.File) error { return rtt.WriteMatrix(f, w.Matrix) })

	write("conventions.txt", func(f *os.File) error {
		res, err := runGolden(t)
		if err != nil {
			return err
		}
		return core.WriteConventions(f, res)
	})
	t.Logf("regenerated %s; commit the new files if the change is intentional", goldenDir)
}

// runGolden learns conventions from the on-disk golden corpus exactly
// as the CLI would: default configuration over LoadInputs.
func runGolden(t *testing.T) (*core.Result, error) {
	t.Helper()
	in, err := geoloc.LoadInputs(goldenDir)
	if err != nil {
		return nil, err
	}
	return core.Run(in, core.DefaultConfig())
}

// TestGoldenPipeline is the end-to-end regression gate: the pipeline
// over the committed corpus must reproduce the committed conventions
// file byte-for-byte. Any drift in parsing, tagging, candidate
// generation, evaluation, learning, selection, classification, or
// serialization fails this test.
func TestGoldenPipeline(t *testing.T) {
	if *updateGolden {
		regenerateGolden(t)
		return
	}
	want, err := os.ReadFile(filepath.Join(goldenDir, "conventions.txt"))
	if err != nil {
		t.Fatalf("missing golden output (run `go test -run TestGoldenPipeline -update`): %v", err)
	}
	res, err := runGolden(t)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NCs) == 0 {
		t.Fatal("golden corpus learned no conventions")
	}
	if len(res.UsableNCs()) == 0 {
		t.Fatal("golden corpus learned no usable conventions")
	}
	var got bytes.Buffer
	if err := core.WriteConventions(&got, res); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("learned conventions drifted from %s/conventions.txt\n%s\n(if intentional, regenerate with -update)",
			goldenDir, diffSummary(want, got.Bytes()))
	}
}

// diffSummary renders the first divergent line of two byte slices — a
// byte-level diff of a 100-line file is unreadable in CI logs.
func diffSummary(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("first divergence at line %d:\n  want: %s\n  got:  %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: want %d lines, got %d", len(wl), len(gl))
}

// explainProbes is the fixed hostname set behind the explain golden,
// one per decision shape: a learned CLLI overlay, a learned IATA
// overlay, a dictionary place resolution, a dictionary CLLI
// resolution, a convention whose regexes all miss, and a suffix no
// convention covers.
var explainProbes = []string{
	"ge-0-1.core4.lsbn-pt.coreband.net.au",
	"te0-0-2.gw3.trr.us.fiberlink.net",
	"et-2-1-0.zagreb.hr.backhaul.co.uk",
	"as64929-acme.et-2-1-0.r02.hlsnfn.fi.bb.interpath.net",
	"ptr-207.interpath.net",
	"host.unknown.example.org",
}

// renderExplainGolden learns from the committed corpus (one worker, so
// the run is fully sequential) and renders every probe's decision
// trace in both shapes — the hoiho -explain text report and the
// /v1/explain JSON document — into one byte-stable report.
func renderExplainGolden(t *testing.T) []byte {
	t.Helper()
	in, err := geoloc.LoadInputs(goldenDir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Workers = 1
	res, err := core.Run(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := geoloc.New(res, geoloc.Options{Dict: in.Dict, PSL: in.PSL})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, host := range explainProbes {
		ex := ix.Explain(host)
		js, err := json.Marshal(ex)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&buf, "== %s\n%sjson: %s\n\n", host, ex.Text(), js)
	}
	return buf.Bytes()
}

// TestGoldenExplain pins the explain surface end to end: the decision
// traces for the probe set — text and JSON — must match the committed
// report byte-for-byte, and two renderings within one run must agree,
// so serving /v1/explain and hoiho -explain give byte-identical output
// across runs. Regenerate with -update after an intentional change.
func TestGoldenExplain(t *testing.T) {
	goldenPath := filepath.Join(goldenDir, "explain.txt")
	got := renderExplainGolden(t)
	if *updateGolden {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s; commit it if the change is intentional", goldenPath)
		return
	}
	if again := renderExplainGolden(t); !bytes.Equal(got, again) {
		t.Fatalf("explain report differs between two identical runs\n%s", diffSummary(got, again))
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing explain golden (run `go test -run TestGoldenExplain -update`): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("explain traces drifted from %s\n%s\n(if intentional, regenerate with -update)",
			goldenPath, diffSummary(want, got))
	}
}

// TestGoldenTraceDeterministic locks down the trace export contract:
// two traced runs of the committed corpus — frozen clock, sequential
// worker so worker attribution is fixed — emit byte-identical JSONL.
// When HOIHO_GOLDEN_TRACE is set the first trace is written there (CI
// uploads it as an artifact when the golden suite fails).
func TestGoldenTraceDeterministic(t *testing.T) {
	if *updateGolden {
		t.Skip("golden regeneration run")
	}
	in, err := geoloc.LoadInputs(goldenDir)
	if err != nil {
		t.Fatal(err)
	}
	trace := func() []byte {
		cfg := core.DefaultConfig()
		cfg.Workers = 1
		cfg.Tracer = obs.New(obs.Options{Clock: obs.FrozenClock, RetainSpans: true})
		if _, err := core.Run(in, cfg); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := cfg.Tracer.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	first := trace()
	if len(first) == 0 {
		t.Fatal("traced golden run exported nothing")
	}
	if out := os.Getenv("HOIHO_GOLDEN_TRACE"); out != "" {
		if err := os.WriteFile(out, first, 0o644); err != nil {
			t.Fatalf("writing trace artifact: %v", err)
		}
	}
	second := trace()
	if !bytes.Equal(first, second) {
		t.Fatalf("trace JSONL differs between two identical runs\n%s", diffSummary(first, second))
	}
}

// renderQlogGolden drives the golden probe set through a sampled,
// frozen-clock query log over the golden index and returns the JSONL
// bytes. Sample: 2 on purpose — the artifact proves the deterministic
// counter-based sampler keeps the same records every run, not just
// that an unsampled log is stable.
func renderQlogGolden(t *testing.T) []byte {
	t.Helper()
	in, err := geoloc.LoadInputs(goldenDir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Workers = 1
	res, err := core.Run(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := geoloc.New(res, geoloc.Options{Dict: in.Dict, PSL: in.PSL})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ql, err := qlog.New(qlog.Options{
		W:      &buf,
		Sample: 2,
		Clock:  func() time.Time { return time.UnixMicro(1600000000000000).UTC() },
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, host := range explainProbes {
		r := qlog.Record{
			Front:    "http",
			Op:       "GET /v1/geolocate",
			ID:       ql.NextID(),
			Hostname: host,
			Status:   200,
			Outcome:  "miss",
		}
		if _, ok := ix.Lookup(host); ok {
			r.Outcome = "ok"
		}
		ql.Log(r)
	}
	if err := ql.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenQueryLogDeterministic locks down the query-log contract
// the same way TestGoldenTraceDeterministic does for spans: a frozen
// clock plus the counter-based sampler make two identical runs emit
// byte-identical JSONL. When HOIHO_GOLDEN_QLOG is set the first log is
// written there (CI uploads it next to the golden trace on failure).
func TestGoldenQueryLogDeterministic(t *testing.T) {
	if *updateGolden {
		t.Skip("golden regeneration run")
	}
	first := renderQlogGolden(t)
	if len(first) == 0 {
		t.Fatal("query log of the golden probes is empty")
	}
	if out := os.Getenv("HOIHO_GOLDEN_QLOG"); out != "" {
		if err := os.WriteFile(out, first, 0o644); err != nil {
			t.Fatalf("writing qlog artifact: %v", err)
		}
	}
	second := renderQlogGolden(t)
	if !bytes.Equal(first, second) {
		t.Fatalf("query log differs between two identical runs\n%s", diffSummary(first, second))
	}
	// The sampler must actually have dropped records — half the probe
	// set at Sample: 2 — or the artifact proves less than it claims.
	if got := bytes.Count(first, []byte("\n")); got != (len(explainProbes)+1)/2 {
		t.Fatalf("sampled log has %d lines, want %d of %d probes",
			got, (len(explainProbes)+1)/2, len(explainProbes))
	}
}
