// Comparison runs all four geolocation methods — Hoiho (this library),
// DRoP, HLOC, and undns — over one synthetic operator and prints a
// figure-9-style scoreboard plus each method's answer for a few
// hostnames, illustrating why the methods disagree.
//
// Run with:
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"
	"sort"

	"hoiho/internal/baseline/drop"
	"hoiho/internal/baseline/hloc"
	"hoiho/internal/core"
	"hoiho/internal/eval"
	"hoiho/internal/geo"
	"hoiho/internal/synth"
)

func main() {
	// A small ITDK-shaped world with ground truth.
	p, err := synth.ITDKPreset("ipv4-aug2020")
	if err != nil {
		log.Fatal(err)
	}
	p.Operators = 10
	p.Noise = 4
	p.VPs = 16
	w, err := synth.Generate(p)
	if err != nil {
		log.Fatal(err)
	}
	if spoofers := w.CleanSpoofers(); len(spoofers) > 0 {
		fmt.Printf("filtered spoofing VPs: %v\n\n", spoofers)
	}

	res, err := core.Run(w.Inputs(), core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Figure-9-style comparison over every geohint-bearing hostname.
	f := eval.ComputeFig9(w, res)
	fmt.Print(f.Format())

	// Show individual answers for one suffix.
	suffix := f.Suffixes[0]
	for _, s := range f.Suffixes {
		if nc := res.NCs[s]; nc != nil && len(nc.Learned) > 0 {
			suffix = s
			break
		}
	}
	fmt.Printf("\nper-hostname answers for %s:\n", suffix)

	dropRules := drop.Learn(w.Corpus, w.PSL, w.Dict, w.Matrix)
	hlocInst := hloc.New(hloc.DefaultConfig(), w.Dict, w.Matrix)
	undnsRules := eval.BuildUndnsRuleset(w, 0.6, 14)
	nc := res.NCs[suffix]

	var hosts []string
	hostRouter := make(map[string]string)
	for _, r := range w.Corpus.Routers {
		for _, ifc := range r.Interfaces {
			if ifc.Hostname != "" && w.HintHostnames[ifc.Hostname] == suffix {
				hosts = append(hosts, ifc.Hostname)
				hostRouter[ifc.Hostname] = r.ID
			}
		}
	}
	sort.Strings(hosts)
	if len(hosts) > 6 {
		hosts = hosts[:6]
	}
	for _, host := range hosts {
		truth := w.TruthRouter[hostRouter[host]]
		fmt.Printf("  %s (truth: %s)\n", host, truth.String())

		if g, ok := core.Geolocate(nc, w.Dict, host); ok {
			fmt.Printf("    hoiho: %-26s %s\n", g.Loc.String(), verdict(g.Loc.Pos, truth.Pos))
		} else {
			fmt.Printf("    hoiho: no answer\n")
		}
		if loc, ok := dropRules.Geolocate(host, suffix, w.Dict); ok {
			fmt.Printf("    drop:  %-26s %s\n", loc.String(), verdict(loc.Pos, truth.Pos))
		} else {
			fmt.Printf("    drop:  no answer\n")
		}
		if loc, ok := hlocInst.Geolocate(hostRouter[host], host, suffix); ok {
			fmt.Printf("    hloc:  %-26s %s\n", loc.String(), verdict(loc.Pos, truth.Pos))
		} else {
			fmt.Printf("    hloc:  no answer\n")
		}
		if loc, ok := undnsRules.Geolocate(host, suffix); ok {
			fmt.Printf("    undns: %-26s %s\n", loc.String(), verdict(loc.Pos, truth.Pos))
		} else {
			fmt.Printf("    undns: no answer\n")
		}
	}
}

func verdict(inferred, truth geo.LatLong) string {
	km := geo.DistanceKm(inferred, truth)
	if km <= eval.TruePositiveKm {
		return fmt.Sprintf("OK (%.0f km)", km)
	}
	return fmt.Sprintf("WRONG (%.0f km off)", km)
}
