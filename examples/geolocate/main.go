// Geolocate demonstrates the end-to-end workflow a downstream user
// follows: generate (or load) a corpus, learn conventions once, then
// geolocate a stream of hostnames — including hostnames the learner
// never saw — and fall back to constraint-based geolocation (CBG
// multilateration over the RTT matrix) for routers whose hostnames
// carry no geohint.
//
// Run with:
//
//	go run ./examples/geolocate
package main

import (
	"fmt"
	"log"

	"hoiho/internal/core"
	"hoiho/internal/geo"
	"hoiho/internal/psl"
	"hoiho/internal/synth"
)

func main() {
	p, err := synth.ITDKPreset("ipv6-nov2020")
	if err != nil {
		log.Fatal(err)
	}
	w, err := synth.Generate(p)
	if err != nil {
		log.Fatal(err)
	}
	w.CleanSpoofers()

	res, err := core.Run(w.Inputs(), core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned %d conventions (%d usable)\n\n", len(res.NCs), len(res.UsableNCs()))

	list := psl.MustDefault()

	// Geolocate every hostname in the corpus through the learned NCs;
	// for routers without a usable hostname answer, fall back to CBG.
	located, cbgLocated, failed := 0, 0, 0
	shown := 0
	for _, r := range w.Corpus.Routers {
		truth := w.TruthRouter[r.ID]
		var answer *geo.LatLong
		var how string

		for _, host := range r.Hostnames() {
			suffix := list.RegistrableDomain(host)
			nc := res.NCs[suffix]
			if nc == nil || !nc.Class.Usable() {
				continue
			}
			if g, ok := core.Geolocate(nc, w.Dict, host); ok {
				answer, how = &g.Loc.Pos, fmt.Sprintf("hostname %q via %s", g.Hint, g.Type)
				break
			}
		}
		if answer == nil {
			// CBG fallback: multilaterate the router's RTT constraints.
			if cs := w.Matrix.Constraints(r.ID); len(cs) > 0 {
				if region, err := geo.Multilaterate(cs, 24); err == nil {
					answer, how = &region.Center,
						fmt.Sprintf("CBG over %d constraints (±%.0f km)", len(cs), region.ErrorRadiusKm)
					cbgLocated++
				}
			}
		} else {
			located++
		}
		if answer == nil {
			failed++
			continue
		}
		if shown < 8 {
			shown++
			km := geo.DistanceKm(*answer, truth.Pos)
			fmt.Printf("%-14s %-22s err=%6.0f km  (%s)\n",
				r.ID, truth.String(), km, how)
		}
	}
	fmt.Printf("\nhostname-geolocated %d routers, CBG-geolocated %d, no answer for %d (of %d)\n",
		located, cbgLocated, failed, w.Corpus.Len())
}
