// Customhints reproduces figure 8 of the paper: stage 4 learning that
// (a) he.net repurposes the IATA code "ash" (Nashua, NH) to mean
// Ashburn, VA, and (b) ntt.net invented the CLLI-shaped code "mlanit"
// for Milan, IT — a code absent from the CLLI dictionary, learned from a
// single pair of congruent routers because the hostname also carries
// the country code.
//
// Run with:
//
//	go run ./examples/customhints
package main

import (
	"fmt"
	"log"
	"net/netip"

	"hoiho/internal/core"
	"hoiho/internal/geo"
	"hoiho/internal/geodict"
	"hoiho/internal/itdk"
	"hoiho/internal/psl"
	"hoiho/internal/rtt"
)

type world struct {
	dict   *geodict.Dictionary
	matrix *rtt.Matrix
	corpus *itdk.Corpus
	ip     int
}

func main() {
	dict := geodict.MustDefault()
	list := psl.MustDefault()
	vps := []*rtt.VP{
		vpAt(dict, "cgs-us", "college park", "md", "us"),
		vpAt(dict, "sjc-us", "san jose", "ca", "us"),
		vpAt(dict, "zrh-ch", "zurich", "zh", "ch"),
		vpAt(dict, "lon-gb", "london", "", "gb"),
		vpAt(dict, "nyc-us", "new york", "ny", "us"),
	}
	w := &world{dict: dict, matrix: rtt.NewMatrix(vps), corpus: itdk.NewCorpus("fig8", false)}

	// Figure 8a: he.net embeds IATA codes; "ash" means Ashburn, VA.
	fmt.Println("figure 8a: learning that \"ash\" means Ashburn, VA for he.net")
	fmt.Printf("  IATA dictionary says ash = %s\n", dict.IATA("ash")[0].Loc.String())
	w.add("he1", "san jose", "100ge1-2.core1.sjc1.he.net")
	w.add("he2", "san jose", "100ge3-1.core2.sjc1.he.net")
	w.add("he3", "london", "100ge1-1.core1.lhr1.he.net")
	w.add("he4", "london", "100ge9-2.core2.lhr1.he.net")
	w.add("he5", "new york", "100ge2-1.core1.jfk1.he.net")
	w.add("he6", "new york", "100ge2-2.core2.jfk1.he.net")
	w.add("he7", "ashburn", "gcr-company.gigabitethernet4-1.core1.ash1.he.net")
	w.add("he8", "ashburn", "100ge1-2.core1.ash1.he.net")
	w.add("he9", "ashburn", "100ge10-1.core2.ash1.he.net")
	w.add("he10", "ashburn", "46-labs-llc.ve401.core2.ash1.he.net")

	// Figure 8b: NTT embeds CLLI prefixes plus a country code, with the
	// invented "mlanit" for Milan.
	fmt.Println("figure 8b: learning that \"mlanit, it\" means Milan, IT for ntt.net")
	fmt.Printf("  CLLI dictionary has no entry for mlanit: %v\n", dict.CLLI("mlanit") == nil)
	w.add("ntt1", "san jose", "ae-2.r20.snjsca04.us.bb.gin.ntt.net")
	w.add("ntt2", "san jose", "ae-3.r21.snjsca04.us.bb.gin.ntt.net")
	w.add("ntt3", "seattle", "ae-1.r10.sttlwa01.us.bb.gin.ntt.net")
	w.add("ntt4", "seattle", "xe-0.r11.sttlwa01.us.bb.gin.ntt.net")
	w.add("ntt5", "london", "ae-5.r22.londen12.uk.bb.gin.ntt.net")
	w.add("ntt6", "london", "ae-6.r23.londen12.uk.bb.gin.ntt.net")
	w.add("ntt7", "milan", "ae-7.r02.mlanit01.it.bb.gin.ntt.net")
	w.add("ntt8", "milan", "ae-3.r21.mlanit02.it.bb.gin.ntt.net")

	in := core.Inputs{Dict: dict, PSL: list, Corpus: w.corpus, RTT: w.matrix}
	for _, suffix := range []string{"he.net", "ntt.net"} {
		nc, _, err := core.RunSuffix(in, core.DefaultConfig(), suffix)
		if err != nil {
			log.Fatal(err)
		}
		if nc == nil {
			log.Fatalf("no convention learned for %s", suffix)
		}
		fmt.Printf("\n%s (%s):\n", suffix, nc.Class)
		for _, r := range nc.Regexes {
			fmt.Printf("  %s\n", r)
		}
		for _, lh := range nc.Learned {
			collide := ""
			if lh.Collide {
				collide = "  (collides with a dictionary code)"
			}
			fmt.Printf("  learned: %s  tp=%d fp=%d%s\n", lh, lh.TP, lh.FP, collide)
		}
	}
}

// add registers a router at a city with honest delay measurements.
func (w *world) add(id, city, hostname string) {
	loc := w.dict.Place(city)[0]
	w.ip++
	r := &itdk.Router{ID: id, Interfaces: []itdk.Interface{{
		Addr:     netip.MustParseAddr(fmt.Sprintf("198.51.100.%d", w.ip)),
		Hostname: hostname,
	}}}
	if err := w.corpus.Add(r); err != nil {
		log.Fatal(err)
	}
	for _, vp := range w.matrix.VPs() {
		s := rtt.Sample{RTTms: geo.MinRTTms(vp.Pos, loc.Pos)*1.3 + 1, Method: rtt.ICMP}
		if err := w.matrix.SetPing(id, vp.Name, s); err != nil {
			log.Fatal(err)
		}
	}
}

func vpAt(d *geodict.Dictionary, name, city, region, country string) *rtt.VP {
	for _, loc := range d.Place(city) {
		if loc.Region == region && loc.Country == country {
			return &rtt.VP{Name: name, City: city, Country: country, Pos: loc.Pos}
		}
	}
	log.Fatalf("unknown VP city %q", city)
	return nil
}
