// Aliasresolution demonstrates the substrate beneath the ITDK (paper
// §5.1.3): inferring which interface addresses belong to the same
// router. Simulated devices share a monotonic IP-ID counter across
// their interfaces; the MIDAR-style resolver probes the addresses,
// estimates counter velocities, applies the Monotonic Bounds Test to
// candidate pairs, corroborates survivors at a distant time, and prints
// the recovered routers.
//
// Run with:
//
//	go run ./examples/aliasresolution
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net/netip"

	"hoiho/internal/alias"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// Ground truth: routers with 2-4 interfaces, plus hostile cases the
	// resolver must reject — a device with random IP-IDs and one that
	// answers constant zero.
	var devices []*alias.SimDevice
	truth := make(map[netip.Addr]int)
	n := 1
	mk := func(k int, random, constant bool) {
		d := &alias.SimDevice{
			Base: uint16(rng.Intn(65536)), Rate: 20 + rng.Float64()*400,
			JitterIDs: 2, RandomID: random, ConstantID: constant,
		}
		for j := 0; j < k; j++ {
			a := netip.MustParseAddr(fmt.Sprintf("198.51.100.%d", n))
			d.Addrs = append(d.Addrs, a)
			truth[a] = len(devices)
			n++
		}
		devices = append(devices, d)
	}
	for i := 0; i < 8; i++ {
		mk(2+i%3, false, false)
	}
	mk(2, true, false) // random IP-IDs (modern stack)
	mk(2, false, true) // constant zero

	prober := alias.NewSimProber(devices, 23, 0.02)
	res, err := alias.Resolve(prober, prober.Addrs(), alias.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("probed %d addresses from %d devices\n\n", len(prober.Addrs()), len(devices))
	correct := 0
	for i, g := range res.Routers {
		dev := truth[g[0]]
		ok := true
		for _, a := range g[1:] {
			if truth[a] != dev {
				ok = false
			}
		}
		verdict := "WRONG"
		if ok && len(g) == len(devices[dev].Addrs) {
			verdict = "exact"
			correct++
		} else if ok {
			verdict = "partial"
		}
		fmt.Printf("router %d: %v  (%s, true device %d)\n", i+1, g, verdict, dev)
	}
	fmt.Printf("\nsingletons: %d, discarded (random/constant/silent IP-IDs): %d\n",
		len(res.Singletons), len(res.Discarded))
	fmt.Printf("reconstructed %d of %d honest devices exactly\n", correct, 8)
}
