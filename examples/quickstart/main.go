// Quickstart: learn a naming convention from a handful of router
// hostnames and geolocate a new hostname with it.
//
// The corpus is an he.net-style network embedding IATA codes, with the
// operator's custom "ash" code for Ashburn, VA — the paper's running
// example (fig. 1, fig. 8a).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"net/netip"

	"hoiho/internal/core"
	"hoiho/internal/geo"
	"hoiho/internal/geodict"
	"hoiho/internal/itdk"
	"hoiho/internal/psl"
	"hoiho/internal/rtt"
)

func main() {
	dict := geodict.MustDefault()
	list := psl.MustDefault()

	// Vantage points with known locations (stage 1).
	vps := []*rtt.VP{
		vpAt(dict, "cgs-us", "college park", "md", "us"),
		vpAt(dict, "sjc-us", "san jose", "ca", "us"),
		vpAt(dict, "lon-gb", "london", "", "gb"),
		vpAt(dict, "fra-de", "frankfurt am main", "he", "de"),
		vpAt(dict, "tyo-jp", "tokyo", "", "jp"),
	}
	matrix := rtt.NewMatrix(vps)
	corpus := itdk.NewCorpus("quickstart", false)

	// A small he.net-style corpus: hostnames embed IATA codes, except
	// the operator uses "ash" (an IATA code for Nashua, NH) to mean
	// Ashburn, VA.
	sites := []struct {
		code string
		city string
		n    int
	}{
		{"sjc", "san jose", 3},
		{"fra", "frankfurt am main", 3},
		{"lhr", "london", 3},
		{"tyo", "tokyo", 3},
		{"ash", "ashburn", 4},
	}
	id, ip := 0, 0
	for _, s := range sites {
		loc := placeIn(dict, s.city)
		for i := 1; i <= s.n; i++ {
			id++
			ip++
			rid := fmt.Sprintf("N%d", id)
			r := &itdk.Router{ID: rid, Interfaces: []itdk.Interface{{
				Addr:     netip.MustParseAddr(fmt.Sprintf("192.0.2.%d", ip)),
				Hostname: fmt.Sprintf("100ge%d-1.core%d.%s1.example.net", i, i, s.code),
			}}}
			if err := corpus.Add(r); err != nil {
				log.Fatal(err)
			}
			// Honest delay measurements from every VP (min-of-three
			// pings in a real campaign; here the closed form).
			for _, vp := range vps {
				s := rtt.Sample{RTTms: geo.MinRTTms(vp.Pos, loc.Pos)*1.25 + 1, Method: rtt.ICMP}
				if err := matrix.SetPing(rid, vp.Name, s); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	// Stages 2-5: learn the convention for example.net.
	in := core.Inputs{Dict: dict, PSL: list, Corpus: corpus, RTT: matrix}
	nc, _, err := core.RunSuffix(in, core.DefaultConfig(), "example.net")
	if err != nil {
		log.Fatal(err)
	}
	if nc == nil {
		log.Fatal("no convention learned")
	}

	fmt.Printf("learned convention for example.net (%s, PPV %.0f%%):\n",
		nc.Class, 100*nc.Tally.PPV())
	for _, r := range nc.Regexes {
		fmt.Printf("  %s  [%s]\n", r, r.Hint)
	}
	for _, lh := range nc.Learned {
		fmt.Printf("  learned custom geohint: %s\n", lh)
	}

	// Geolocate a hostname the pipeline never saw.
	for _, host := range []string{
		"gcr-peer.ve42.core9.ash1.example.net",
		"te0-0-0.edge2.sjc1.example.net",
	} {
		g, ok := core.Geolocate(nc, dict, host)
		if !ok {
			log.Fatalf("failed to geolocate %s", host)
		}
		src := "dictionary"
		if g.Learned {
			src = "learned hint"
		}
		fmt.Printf("%s\n  -> %s (%s, via %s %q)\n", host, g.Loc.String(), g.Loc.Pos, src, g.Hint)
	}
}

func vpAt(d *geodict.Dictionary, name, city, region, country string) *rtt.VP {
	for _, loc := range d.Place(city) {
		if loc.Region == region && loc.Country == country {
			return &rtt.VP{Name: name, City: city, Country: country, Pos: loc.Pos}
		}
	}
	log.Fatalf("unknown VP city %q", city)
	return nil
}

func placeIn(d *geodict.Dictionary, city string) *geodict.Location {
	ls := d.Place(city)
	if len(ls) == 0 {
		log.Fatalf("unknown city %q", city)
	}
	return ls[0]
}
