// TBG demonstrates the paper's "most promising next step" (§8):
// synthesizing hostname geolocation with router-level topology. Routers
// geolocated through learned naming conventions become anchors;
// topology-based geolocation (Katz-Bassett et al.) then confines their
// unnamed neighbors far more tightly than vantage-point delays alone.
//
// Run with:
//
//	go run ./examples/tbg
package main

import (
	"fmt"
	"log"

	"hoiho/internal/core"
	"hoiho/internal/geo"
	"hoiho/internal/synth"
	"hoiho/internal/tbg"
)

func main() {
	p, err := synth.ITDKPreset("ipv4-aug2020")
	if err != nil {
		log.Fatal(err)
	}
	p.Operators = 12
	p.Noise = 5
	p.VPs = 14
	w, err := synth.Generate(p)
	if err != nil {
		log.Fatal(err)
	}
	w.CleanSpoofers()

	res, err := core.Run(w.Inputs(), core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	anchors := tbg.BuildAnchors(w.Inputs(), res, w.PSL)
	fmt.Printf("hostname geolocation anchored %d of %d routers\n\n",
		len(anchors), w.Corpus.Len())

	cfg := tbg.DefaultConfig()
	fmt.Printf("%-26s %12s %14s %10s\n", "unanchored router", "VP-only err", "VP-only ±km", "TBG ±km")
	shown := 0
	var sumVP, sumTBG float64
	for _, r := range w.Corpus.Routers {
		if _, ok := anchors[r.ID]; ok {
			continue
		}
		anchored := false
		for _, nbr := range w.Corpus.Neighbors(r.ID) {
			if _, ok := anchors[nbr]; ok {
				anchored = true
				break
			}
		}
		if !anchored || !w.Matrix.HasPing(r.ID) {
			continue
		}
		truth := w.TruthRouter[r.ID]
		vpOnly, ok1 := tbg.Geolocate(w.Corpus, w.Matrix, tbg.Anchors{}, r.ID, cfg)
		full, ok2 := tbg.Geolocate(w.Corpus, w.Matrix, anchors, r.ID, cfg)
		if !ok1 || !ok2 || full.AnchorLinks == 0 {
			continue
		}
		errVP := geo.DistanceKm(vpOnly.Region.Center, truth.Pos)
		sumVP += vpOnly.Region.ErrorRadiusKm
		sumTBG += full.Region.ErrorRadiusKm
		shown++
		if shown <= 10 {
			fmt.Printf("%-26s %9.0f km %11.0f km %7.0f km\n",
				r.ID, errVP, vpOnly.Region.ErrorRadiusKm, full.Region.ErrorRadiusKm)
		}
		if shown >= 40 {
			break
		}
	}
	if shown == 0 {
		log.Fatal("no TBG-eligible routers in this world")
	}
	fmt.Printf("\nmean feasible-region radius over %d routers: %.0f km (VP-only) -> %.0f km (with anchors)\n",
		shown, sumVP/float64(shown), sumTBG/float64(shown))
}
