node.geo transitnet.net-N1: 39.0438 -77.4874 ashburn|va|us
node.geo transitnet.net-N2: 39.0438 -77.4874 ashburn|va|us
node.geo transitnet.net-N3: 43.6532 -79.3832 toronto|on|ca
node.geo transitnet.net-N4: 43.6532 -79.3832 toronto|on|ca
node.geo transitnet.net-N5: 43.6532 -79.3832 toronto|on|ca
node.geo transitnet.net-N6: 43.6532 -79.3832 toronto|on|ca
node.geo transitnet.net-N7: 43.6532 -79.3832 toronto|on|ca
node.geo transitnet.net-N8: 43.6532 -79.3832 toronto|on|ca
node.geo transitnet.net-N9: 35.6762 139.6503 tokyo||jp
node.geo transitnet.net-N10: 35.6762 139.6503 tokyo||jp
node.geo transitnet.net-N11: 35.6762 139.6503 tokyo||jp
node.geo transitnet.net-N12: 35.6762 139.6503 tokyo||jp
node.geo transitnet.net-N13: 35.6762 139.6503 tokyo||jp
node.geo transitnet.net-N14: 35.6762 139.6503 tokyo||jp
node.geo transitnet.net-N15: 51.5074 -0.1278 london||gb
node.geo transitnet.net-N16: 51.5074 -0.1278 london||gb
node.geo transitnet.net-N17: 51.5074 -0.1278 london||gb
node.geo transitnet.net-N18: 31.5204 74.3587 lahore||pk
node.geo transitnet.net-N19: 31.5204 74.3587 lahore||pk
node.geo transitnet.net-N20: 31.5204 74.3587 lahore||pk
node.geo transitnet.net-N21: 31.5204 74.3587 lahore||pk
node.geo transitnet.net-N22: 51.5136 7.4653 dortmund|nw|de
node.geo transitnet.net-N23: 51.5136 7.4653 dortmund|nw|de
node.geo transitnet.net-N24: 51.5136 7.4653 dortmund|nw|de
node.geo transitnet.net-N25: 51.5136 7.4653 dortmund|nw|de
node.geo transitnet.net-N26: 51.5136 7.4653 dortmund|nw|de
node.geo transitnet.net-N27: 25.6866 -100.3161 monterrey||mx
node.geo transitnet.net-N28: 25.6866 -100.3161 monterrey||mx
node.geo transitnet.net-N29: 25.6866 -100.3161 monterrey||mx
node.geo transitnet.net-N30: 25.6866 -100.3161 monterrey||mx
node.geo transitnet.net-N31: 25.6866 -100.3161 monterrey||mx
node.geo transitnet.net-N32: 48.8566 2.3522 paris||fr
node.geo transitnet.net-N33: 48.8566 2.3522 paris||fr
node.geo transitnet.net-N34: 48.8566 2.3522 paris||fr
node.geo transitnet.net-N35: 48.8566 2.3522 paris||fr
node.geo transitnet.net-N36: 10.8231 106.6297 ho chi minh city||vn
node.geo transitnet.net-N37: 10.8231 106.6297 ho chi minh city||vn
node.geo transitnet.net-N38: 51.5136 7.4653 dortmund|nw|de
node.geo transitnet.net-N39: 51.5136 7.4653 dortmund|nw|de
node.geo transitnet.net-N40: 51.5136 7.4653 dortmund|nw|de
node.geo transitnet.net-N41: 16.8661 96.1951 yangon||mm
node.geo transitnet.net-N42: 16.8661 96.1951 yangon||mm
node.geo transitnet.net-N43: 16.8661 96.1951 yangon||mm
node.geo transitnet.net-N44: 16.8661 96.1951 yangon||mm
node.geo transitnet.net-N45: 19.8301 -90.5349 campeche||mx
node.geo transitnet.net-N46: 19.8301 -90.5349 campeche||mx
node.geo transitnet.net-N47: 19.8301 -90.5349 campeche||mx
node.geo transitnet.net-N48: 54.3520 18.6466 gdansk||pl
node.geo transitnet.net-N49: 54.3520 18.6466 gdansk||pl
node.geo transitnet.net-N50: 54.3520 18.6466 gdansk||pl
node.geo transitnet.net-N51: 54.3520 18.6466 gdansk||pl
node.geo transitnet.net-N52: 54.3520 18.6466 gdansk||pl
node.geo transitnet.net-N53: 54.3520 18.6466 gdansk||pl
node.geo transitnet.net-N54: 44.5133 -88.0133 green bay|wi|us
node.geo transitnet.net-N55: 44.5133 -88.0133 green bay|wi|us
node.geo transitnet.net-N56: 44.5133 -88.0133 green bay|wi|us
node.geo transitnet.net-N57: 44.5133 -88.0133 green bay|wi|us
node.geo transitnet.net-N58: 44.5133 -88.0133 green bay|wi|us
node.geo transitnet.net-N59: 44.5133 -88.0133 green bay|wi|us
node.geo transitnet.net-N60: 43.2141 27.9147 varna||bg
node.geo transitnet.net-N61: 43.2141 27.9147 varna||bg
node.geo transitnet.net-N62: 43.2141 27.9147 varna||bg
node.geo transitnet.net-N63: 43.2141 27.9147 varna||bg
node.geo transitnet.net-N64: 43.2141 27.9147 varna||bg
node.geo transitnet.net-N65: 43.2141 27.9147 varna||bg
node.geo transitnet.net-N66: 43.7696 11.2558 florence||it
node.geo transitnet.net-N67: 43.7696 11.2558 florence||it
node.geo transitnet.net-N68: 43.7696 11.2558 florence||it
node.geo transitnet.net-N69: 43.7696 11.2558 florence||it
node.geo transitnet.net-N70: 43.7696 11.2558 florence||it
node.geo transitnet.net-N71: 43.7696 11.2558 florence||it
node.geo transitnet.net-N72: -34.6037 -58.3816 buenos aires||ar
node.geo transitnet.net-N73: -34.6037 -58.3816 buenos aires||ar
node.geo transitnet.net-N74: -34.6037 -58.3816 buenos aires||ar
node.geo transitnet.net-N75: 41.6528 -83.5379 toledo|oh|us
node.geo transitnet.net-N76: 41.6528 -83.5379 toledo|oh|us
node.geo transitnet.net-N77: 41.6528 -83.5379 toledo|oh|us
node.geo transitnet.net-N78: 41.6528 -83.5379 toledo|oh|us
node.geo transitnet.net-N79: 41.6528 -83.5379 toledo|oh|us
node.geo transitnet.net-N80: 48.1486 17.1077 bratislava||sk
node.geo transitnet.net-N81: 48.1486 17.1077 bratislava||sk
node.geo transitnet.net-N82: 5.4164 100.3327 penang||my
node.geo transitnet.net-N83: 5.4164 100.3327 penang||my
node.geo transitnet.net-N84: 5.4164 100.3327 penang||my
node.geo transitnet.net-N85: 5.4164 100.3327 penang||my
node.geo transitnet.net-N86: 5.4164 100.3327 penang||my
node.geo transitnet.net-N87: 5.4164 100.3327 penang||my
node.geo transitnet.net-N88: 51.0504 13.7373 dresden|sn|de
node.geo transitnet.net-N89: 51.0504 13.7373 dresden|sn|de
node.geo transitnet.net-N90: 51.0504 13.7373 dresden|sn|de
node.geo transitnet.net-N91: 51.0504 13.7373 dresden|sn|de
node.geo transitnet.net-N92: 51.0504 13.7373 dresden|sn|de
node.geo transitnet.net-N93: -12.9777 -38.5016 salvador|ba|br
node.geo transitnet.net-N94: -12.9777 -38.5016 salvador|ba|br
node.geo transitnet.net-N95: -12.9777 -38.5016 salvador|ba|br
node.geo transitnet.net-N96: -12.9777 -38.5016 salvador|ba|br
node.geo transitnet.net-N97: -12.9777 -38.5016 salvador|ba|br
node.geo transitnet.net-N98: -12.9777 -38.5016 salvador|ba|br
node.geo transitnet.net-N99: 45.4408 12.3155 venice||it
node.geo transitnet.net-N100: 45.4408 12.3155 venice||it
node.geo transitnet.net-N101: 45.4408 12.3155 venice||it
node.geo transitnet.net-N102: 41.9973 21.4280 skopje||mk
node.geo transitnet.net-N103: 41.9973 21.4280 skopje||mk
node.geo transitnet.net-N104: 41.9973 21.4280 skopje||mk
node.geo transitnet.net-N105: 41.9973 21.4280 skopje||mk
node.geo coreband.net.au-N1: 37.5407 -77.4360 richmond|va|us
node.geo coreband.net.au-N2: 37.5407 -77.4360 richmond|va|us
node.geo coreband.net.au-N3: 37.5407 -77.4360 richmond|va|us
node.geo coreband.net.au-N4: 37.5407 -77.4360 richmond|va|us
node.geo coreband.net.au-N5: 37.5407 -77.4360 richmond|va|us
node.geo coreband.net.au-N6: 37.5407 -77.4360 richmond|va|us
node.geo coreband.net.au-N7: 37.5407 -77.4360 richmond|va|us
node.geo coreband.net.au-N8: 38.7223 -9.1393 lisbon||pt
node.geo coreband.net.au-N9: 38.7223 -9.1393 lisbon||pt
node.geo coreband.net.au-N10: 38.7223 -9.1393 lisbon||pt
node.geo coreband.net.au-N11: 38.7223 -9.1393 lisbon||pt
node.geo coreband.net.au-N12: 38.7223 -9.1393 lisbon||pt
node.geo coreband.net.au-N13: 38.7223 -9.1393 lisbon||pt
node.geo coreband.net.au-N14: 38.7223 -9.1393 lisbon||pt
node.geo coreband.net.au-N15: 38.7223 -9.1393 lisbon||pt
node.geo coreband.net.au-N16: 42.9956 -71.4548 manchester|nh|us
node.geo coreband.net.au-N17: 42.9956 -71.4548 manchester|nh|us
node.geo coreband.net.au-N18: 42.9956 -71.4548 manchester|nh|us
node.geo coreband.net.au-N19: 37.5407 -77.4360 richmond|va|us
node.geo coreband.net.au-N20: 37.5407 -77.4360 richmond|va|us
node.geo coreband.net.au-N21: 37.5407 -77.4360 richmond|va|us
node.geo coreband.net.au-N22: 37.5407 -77.4360 richmond|va|us
node.geo coreband.net.au-N23: 37.5407 -77.4360 richmond|va|us
node.geo coreband.net.au-N24: 37.5407 -77.4360 richmond|va|us
node.geo coreband.net.au-N25: 37.5407 -77.4360 richmond|va|us
node.geo coreband.net.au-N26: 42.2626 -71.8023 worcester|ma|us
node.geo coreband.net.au-N27: 42.2626 -71.8023 worcester|ma|us
node.geo coreband.net.au-N28: 42.2626 -71.8023 worcester|ma|us
node.geo coreband.net.au-N29: 42.2626 -71.8023 worcester|ma|us
node.geo coreband.net.au-N30: 42.2626 -71.8023 worcester|ma|us
node.geo coreband.net.au-N31: 35.2271 -80.8431 charlotte|nc|us
node.geo coreband.net.au-N32: 35.2271 -80.8431 charlotte|nc|us
node.geo coreband.net.au-N33: 35.2271 -80.8431 charlotte|nc|us
node.geo coreband.net.au-N34: 35.2271 -80.8431 charlotte|nc|us
node.geo coreband.net.au-N35: 48.7758 9.1829 stuttgart|bw|de
node.geo coreband.net.au-N36: 48.7758 9.1829 stuttgart|bw|de
node.geo coreband.net.au-N37: 48.7758 9.1829 stuttgart|bw|de
node.geo coreband.net.au-N38: 48.7758 9.1829 stuttgart|bw|de
node.geo coreband.net.au-N39: 48.7758 9.1829 stuttgart|bw|de
node.geo coreband.net.au-N40: 29.4241 -98.4936 san antonio|tx|us
node.geo coreband.net.au-N41: 29.4241 -98.4936 san antonio|tx|us
node.geo coreband.net.au-N42: 29.4241 -98.4936 san antonio|tx|us
node.geo coreband.net.au-N43: 29.4241 -98.4936 san antonio|tx|us
node.geo coreband.net.au-N44: 29.4241 -98.4936 san antonio|tx|us
node.geo coreband.net.au-N45: 37.7749 -122.4194 san francisco|ca|us
node.geo coreband.net.au-N46: 37.7749 -122.4194 san francisco|ca|us
node.geo coreband.net.au-N47: 37.7749 -122.4194 san francisco|ca|us
node.geo coreband.net.au-N48: 37.7749 -122.4194 san francisco|ca|us
node.geo coreband.net.au-N49: 37.7749 -122.4194 san francisco|ca|us
node.geo coreband.net.au-N50: 37.7749 -122.4194 san francisco|ca|us
node.geo coreband.net.au-N51: 37.7749 -122.4194 san francisco|ca|us
node.geo coreband.net.au-N52: 34.0007 -81.0348 columbia|sc|us
node.geo coreband.net.au-N53: 34.0007 -81.0348 columbia|sc|us
node.geo coreband.net.au-N54: 34.0007 -81.0348 columbia|sc|us
node.geo coreband.net.au-N55: 34.0007 -81.0348 columbia|sc|us
node.geo coreband.net.au-N56: 34.0007 -81.0348 columbia|sc|us
node.geo coreband.net.au-N57: 34.0007 -81.0348 columbia|sc|us
node.geo coreband.net.au-N58: 52.3676 4.9041 amsterdam||nl
node.geo coreband.net.au-N59: 52.3676 4.9041 amsterdam||nl
node.geo coreband.net.au-N60: 52.3676 4.9041 amsterdam||nl
node.geo coreband.net.au-N61: 52.3676 4.9041 amsterdam||nl
node.geo coreband.net.au-N62: 28.7041 77.1025 delhi||in
node.geo coreband.net.au-N63: 28.7041 77.1025 delhi||in
node.geo coreband.net.au-N64: 28.7041 77.1025 delhi||in
node.geo coreband.net.au-N65: 28.7041 77.1025 delhi||in
node.geo coreband.net.au-N66: 28.7041 77.1025 delhi||in
node.geo coreband.net.au-N67: 53.4808 -2.2426 manchester||gb
node.geo coreband.net.au-N68: 53.4808 -2.2426 manchester||gb
node.geo coreband.net.au-N69: 53.4808 -2.2426 manchester||gb
node.geo coreband.net.au-N70: 41.3851 2.1734 barcelona||es
node.geo coreband.net.au-N71: 41.3851 2.1734 barcelona||es
node.geo coreband.net.au-N72: -36.8485 174.7633 auckland||nz
node.geo coreband.net.au-N73: -36.8485 174.7633 auckland||nz
node.geo coreband.net.au-N74: -36.8485 174.7633 auckland||nz
node.geo coreband.net.au-N75: 50.0755 14.4378 prague||cz
node.geo coreband.net.au-N76: 50.0755 14.4378 prague||cz
node.geo coreband.net.au-N77: 50.0755 14.4378 prague||cz
node.geo coreband.net.au-N78: 50.0755 14.4378 prague||cz
node.geo coreband.net.au-N79: 50.0755 14.4378 prague||cz
node.geo coreband.net.au-N80: 32.2226 -110.9747 tucson|az|us
node.geo coreband.net.au-N81: 32.2226 -110.9747 tucson|az|us
node.geo coreband.net.au-N82: 32.2226 -110.9747 tucson|az|us
node.geo coreband.net.au-N83: 32.2226 -110.9747 tucson|az|us
node.geo coreband.net.au-N84: 32.2226 -110.9747 tucson|az|us
node.geo coreband.net.au-N85: 32.2226 -110.9747 tucson|az|us
node.geo coreband.net.au-N86: 40.7357 -74.1724 newark|nj|us
node.geo coreband.net.au-N87: 40.7357 -74.1724 newark|nj|us
node.geo coreband.net.au-N88: 40.7357 -74.1724 newark|nj|us
node.geo coreband.net.au-N89: 40.7357 -74.1724 newark|nj|us
node.geo coreband.net.au-N90: 46.8139 -71.2080 quebec|qc|ca
node.geo coreband.net.au-N91: 46.8139 -71.2080 quebec|qc|ca
node.geo coreband.net.au-N92: -33.9249 18.4241 cape town||za
node.geo coreband.net.au-N93: -33.9249 18.4241 cape town||za
node.geo coreband.net.au-N94: 33.5186 -86.8104 birmingham|al|us
node.geo coreband.net.au-N95: 33.5186 -86.8104 birmingham|al|us
node.geo coreband.net.au-N96: 25.7617 -80.1918 miami|fl|us
node.geo coreband.net.au-N97: 25.7617 -80.1918 miami|fl|us
node.geo coreband.net.au-N98: 42.3601 -71.0589 boston|ma|us
node.geo coreband.net.au-N99: 42.3601 -71.0589 boston|ma|us
node.geo coreband.net.au-N100: 42.3601 -71.0589 boston|ma|us
node.geo coreband.net.au-N101: 31.5493 -97.1467 waco|tx|us
node.geo coreband.net.au-N102: 31.5493 -97.1467 waco|tx|us
node.geo coreband.net.au-N103: 43.0481 -76.1474 syracuse|ny|us
node.geo coreband.net.au-N104: 43.0481 -76.1474 syracuse|ny|us
node.geo coreband.net.au-N105: 43.0481 -76.1474 syracuse|ny|us
node.geo coreband.net.au-N106: 32.0809 -81.0912 savannah|ga|us
node.geo coreband.net.au-N107: 32.0809 -81.0912 savannah|ga|us
node.geo coreband.net.au-N108: 32.0809 -81.0912 savannah|ga|us
node.geo coreband.net.au-N109: 32.0809 -81.0912 savannah|ga|us
node.geo coreband.net.au-N110: 32.0809 -81.0912 savannah|ga|us
node.geo coreband.net.au-N111: 32.0809 -81.0912 savannah|ga|us
node.geo coreband.net.au-N112: 32.0809 -81.0912 savannah|ga|us
node.geo coreband.net.au-N113: 32.0809 -81.0912 savannah|ga|us
node.geo coreband.net.au-N114: 41.7658 -72.6734 hartford|ct|us
node.geo coreband.net.au-N115: 41.7658 -72.6734 hartford|ct|us
node.geo coreband.net.au-N116: 41.7658 -72.6734 hartford|ct|us
node.geo coreband.net.au-N117: 41.7658 -72.6734 hartford|ct|us
node.geo fiberlink.net-N1: 42.0625 -104.1841 torrington|wy|us
node.geo fiberlink.net-N2: 42.0625 -104.1841 torrington|wy|us
node.geo fiberlink.net-N3: 42.0625 -104.1841 torrington|wy|us
node.geo fiberlink.net-N4: 37.3382 -121.8863 san jose|ca|us
node.geo fiberlink.net-N5: 37.3382 -121.8863 san jose|ca|us
node.geo fiberlink.net-N6: 37.3382 -121.8863 san jose|ca|us
node.geo fiberlink.net-N7: 37.3382 -121.8863 san jose|ca|us
node.geo fiberlink.net-N8: 37.3382 -121.8863 san jose|ca|us
node.geo fiberlink.net-N9: -25.2637 -57.5759 asuncion||py
node.geo fiberlink.net-N10: -25.2637 -57.5759 asuncion||py
node.geo fiberlink.net-N11: -25.2637 -57.5759 asuncion||py
node.geo fiberlink.net-N12: -25.2637 -57.5759 asuncion||py
node.geo fiberlink.net-N13: 29.3759 47.9774 kuwait city||kw
node.geo fiberlink.net-N14: 29.3759 47.9774 kuwait city||kw
node.geo fiberlink.net-N15: 29.3759 47.9774 kuwait city||kw
node.geo fiberlink.net-N16: 29.3759 47.9774 kuwait city||kw
node.geo fiberlink.net-N17: 29.3759 47.9774 kuwait city||kw
node.geo fiberlink.net-N18: 38.7223 -9.1393 lisbon||pt
node.geo fiberlink.net-N19: 38.7223 -9.1393 lisbon||pt
node.geo fiberlink.net-N20: 38.7223 -9.1393 lisbon||pt
node.geo fiberlink.net-N21: 38.7223 -9.1393 lisbon||pt
node.geo fiberlink.net-N22: 45.7833 -108.5007 billings|mt|us
node.geo fiberlink.net-N23: 45.7833 -108.5007 billings|mt|us
node.geo fiberlink.net-N24: 45.7833 -108.5007 billings|mt|us
node.geo fiberlink.net-N25: 45.7833 -108.5007 billings|mt|us
node.geo fiberlink.net-N26: 45.7833 -108.5007 billings|mt|us
node.geo fiberlink.net-N27: 45.7833 -108.5007 billings|mt|us
node.geo fiberlink.net-N28: 33.7490 -84.3880 atlanta|ga|us
node.geo fiberlink.net-N29: 33.7490 -84.3880 atlanta|ga|us
node.geo fiberlink.net-N30: 33.7490 -84.3880 atlanta|ga|us
node.geo fiberlink.net-N31: 12.9716 77.5946 bangalore||in
node.geo fiberlink.net-N32: 12.9716 77.5946 bangalore||in
node.geo fiberlink.net-N33: 12.9716 77.5946 bangalore||in
node.geo fiberlink.net-N34: 12.9716 77.5946 bangalore||in
node.geo fiberlink.net-N35: 35.0844 -106.6504 albuquerque|nm|us
node.geo fiberlink.net-N36: 35.0844 -106.6504 albuquerque|nm|us
node.geo fiberlink.net-N37: 56.9496 24.1052 riga||lv
node.geo fiberlink.net-N38: 56.9496 24.1052 riga||lv
node.geo fiberlink.net-N39: 42.9849 -81.2453 london|on|ca
node.geo fiberlink.net-N40: 42.9849 -81.2453 london|on|ca
node.geo fiberlink.net-N41: 51.4416 5.4697 eindhoven||nl
node.geo fiberlink.net-N42: 51.4416 5.4697 eindhoven||nl
node.geo fiberlink.net-N43: 51.4416 5.4697 eindhoven||nl
node.geo fiberlink.net-N44: 21.4858 39.1925 jeddah||sa
node.geo fiberlink.net-N45: 21.4858 39.1925 jeddah||sa
node.geo fiberlink.net-N46: 21.4858 39.1925 jeddah||sa
node.geo fiberlink.net-N47: 9.0320 38.7469 addis ababa||et
node.geo fiberlink.net-N48: 9.0320 38.7469 addis ababa||et
node.geo fiberlink.net-N49: 9.0320 38.7469 addis ababa||et
node.geo fiberlink.net-N50: 43.6047 1.4442 toulouse||fr
node.geo fiberlink.net-N51: 43.6047 1.4442 toulouse||fr
node.geo fiberlink.net-N52: 24.7136 46.6753 riyadh||sa
node.geo fiberlink.net-N53: 24.7136 46.6753 riyadh||sa
node.geo fiberlink.net-N54: 24.7136 46.6753 riyadh||sa
node.geo fiberlink.net-N55: 24.7136 46.6753 riyadh||sa
node.geo fiberlink.net-N56: 24.7136 46.6753 riyadh||sa
node.geo fiberlink.net-N57: 41.2995 69.2401 tashkent||uz
node.geo fiberlink.net-N58: 41.2995 69.2401 tashkent||uz
node.geo fiberlink.net-N59: 41.2995 69.2401 tashkent||uz
node.geo fiberlink.net-N60: 41.2995 69.2401 tashkent||uz
node.geo fiberlink.net-N61: 41.2995 69.2401 tashkent||uz
node.geo fiberlink.net-N62: 41.2995 69.2401 tashkent||uz
node.geo fiberlink.net-N63: 35.2271 -80.8431 charlotte|nc|us
node.geo fiberlink.net-N64: 35.2271 -80.8431 charlotte|nc|us
node.geo fiberlink.net-N65: 35.2271 -80.8431 charlotte|nc|us
node.geo fiberlink.net-N66: 35.2271 -80.8431 charlotte|nc|us
node.geo fiberlink.net-N67: 35.2271 -80.8431 charlotte|nc|us
node.geo fiberlink.net-N68: 35.2271 -80.8431 charlotte|nc|us
node.geo fiberlink.net-N69: 38.9140 121.6147 dalian||cn
node.geo fiberlink.net-N70: 38.9140 121.6147 dalian||cn
node.geo fiberlink.net-N71: 38.9140 121.6147 dalian||cn
node.geo fiberlink.net-N72: 36.1699 -115.1398 las vegas|nv|us
node.geo fiberlink.net-N73: 36.1699 -115.1398 las vegas|nv|us
node.geo fiberlink.net-N74: -42.8821 147.3272 hobart|tas|au
node.geo fiberlink.net-N75: -42.8821 147.3272 hobart|tas|au
node.geo fiberlink.net-N76: -42.8821 147.3272 hobart|tas|au
node.geo fiberlink.net-N77: -42.8821 147.3272 hobart|tas|au
node.geo fiberlink.net-N78: -42.8821 147.3272 hobart|tas|au
node.geo fiberlink.net-N79: 19.4326 -99.1332 mexico city||mx
node.geo fiberlink.net-N80: 19.4326 -99.1332 mexico city||mx
node.geo fiberlink.net-N81: 19.4326 -99.1332 mexico city||mx
node.geo fiberlink.net-N82: 60.1699 24.9384 helsinki||fi
node.geo fiberlink.net-N83: 60.1699 24.9384 helsinki||fi
node.geo fiberlink.net-N84: 60.1699 24.9384 helsinki||fi
node.geo fiberlink.net-N85: 44.4949 11.3426 bologna||it
node.geo fiberlink.net-N86: 44.4949 11.3426 bologna||it
node.geo fiberlink.net-N87: 44.4949 11.3426 bologna||it
node.geo fiberlink.net-N88: 44.4949 11.3426 bologna||it
node.geo fiberlink.net-N89: 44.4949 11.3426 bologna||it
node.geo fiberlink.net-N90: 44.4949 11.3426 bologna||it
node.geo fiberlink.net-N91: 39.1031 -84.5120 cincinnati|oh|us
node.geo fiberlink.net-N92: 39.1031 -84.5120 cincinnati|oh|us
node.geo fiberlink.net-N93: 39.1031 -84.5120 cincinnati|oh|us
node.geo fiberlink.net-N94: 39.1031 -84.5120 cincinnati|oh|us
node.geo fiberlink.net-N95: 39.1031 -84.5120 cincinnati|oh|us
node.geo fiberlink.net-N96: 52.3676 4.9041 amsterdam||nl
node.geo fiberlink.net-N97: 52.3676 4.9041 amsterdam||nl
node.geo fiberlink.net-N98: 34.0007 -81.0348 columbia|sc|us
node.geo fiberlink.net-N99: 34.0007 -81.0348 columbia|sc|us
node.geo fiberlink.net-N100: 34.0007 -81.0348 columbia|sc|us
node.geo fiberlink.net-N101: 34.0007 -81.0348 columbia|sc|us
node.geo fiberlink.net-N102: 50.0755 14.4378 prague||cz
node.geo fiberlink.net-N103: 50.0755 14.4378 prague||cz
node.geo fiberlink.net-N104: 50.0755 14.4378 prague||cz
node.geo fiberlink.net-N105: 50.0755 14.4378 prague||cz
node.geo fiberlink.net-N106: 50.0755 14.4378 prague||cz
node.geo fiberlink.net-N107: 50.0755 14.4378 prague||cz
node.geo fiberlink.net-N108: 42.9956 -71.4548 manchester|nh|us
node.geo fiberlink.net-N109: 42.9956 -71.4548 manchester|nh|us
node.geo fiberlink.net-N110: 42.9956 -71.4548 manchester|nh|us
node.geo fiberlink.net-N111: 42.9956 -71.4548 manchester|nh|us
node.geo netspan.net-N1: 39.1031 -84.5120 cincinnati|oh|us
node.geo netspan.net-N2: 39.1031 -84.5120 cincinnati|oh|us
node.geo netspan.net-N3: 39.1031 -84.5120 cincinnati|oh|us
node.geo netspan.net-N4: 39.1031 -84.5120 cincinnati|oh|us
node.geo netspan.net-N5: 48.2082 16.3738 vienna||at
node.geo netspan.net-N6: 48.2082 16.3738 vienna||at
node.geo netspan.net-N7: 42.2626 -71.8023 worcester|ma|us
node.geo netspan.net-N8: 42.2626 -71.8023 worcester|ma|us
node.geo netspan.net-N9: 42.2626 -71.8023 worcester|ma|us
node.geo netspan.net-N10: 41.7658 -72.6734 hartford|ct|us
node.geo netspan.net-N11: 41.7658 -72.6734 hartford|ct|us
node.geo netspan.net-N12: 41.7658 -72.6734 hartford|ct|us
node.geo netspan.net-N13: 41.7658 -72.6734 hartford|ct|us
node.geo netspan.net-N14: 42.9634 -85.6681 grand rapids|mi|us
node.geo netspan.net-N15: 42.9634 -85.6681 grand rapids|mi|us
node.geo netspan.net-N16: 42.9634 -85.6681 grand rapids|mi|us
node.geo netspan.net-N17: 37.9838 23.7275 athens||gr
node.geo netspan.net-N18: 37.9838 23.7275 athens||gr
node.geo netspan.net-N19: 37.9838 23.7275 athens||gr
node.geo netspan.net-N20: 37.5407 -77.4360 richmond|va|us
node.geo netspan.net-N21: 37.5407 -77.4360 richmond|va|us
node.geo netspan.net-N22: 37.5407 -77.4360 richmond|va|us
node.geo netspan.net-N23: 37.6872 -97.3301 wichita|ks|us
node.geo netspan.net-N24: 37.6872 -97.3301 wichita|ks|us
node.geo netspan.net-N25: 37.6872 -97.3301 wichita|ks|us
node.geo netspan.net-N26: 37.6872 -97.3301 wichita|ks|us
node.geo netspan.net-N27: 55.8642 -4.2518 glasgow||gb
node.geo netspan.net-N28: 55.8642 -4.2518 glasgow||gb
node.geo netspan.net-N29: 55.8642 -4.2518 glasgow||gb
node.geo netspan.net-N30: 55.8642 -4.2518 glasgow||gb
node.geo netspan.net-N31: 40.4168 -3.7038 madrid||es
node.geo netspan.net-N32: 40.4168 -3.7038 madrid||es
node.geo netspan.net-N33: 40.4168 -3.7038 madrid||es
node.geo netspan.net-N34: 35.9606 -83.9207 knoxville|tn|us
node.geo netspan.net-N35: 35.9606 -83.9207 knoxville|tn|us
node.geo netspan.net-N36: 35.9606 -83.9207 knoxville|tn|us
node.geo netspan.net-N37: 35.9606 -83.9207 knoxville|tn|us
node.geo netspan.net-N38: 47.6588 -117.4260 spokane|wa|us
node.geo netspan.net-N39: 47.6588 -117.4260 spokane|wa|us
node.geo netspan.net-N40: 47.6588 -117.4260 spokane|wa|us
node.geo netspan.net-N41: 47.6588 -117.4260 spokane|wa|us
node.geo netspan.net-N42: 46.2044 6.1432 geneva|ge|ch
node.geo netspan.net-N43: 46.2044 6.1432 geneva|ge|ch
node.geo netspan.net-N44: 47.5615 -52.7126 st johns|nl|ca
node.geo netspan.net-N45: 47.5615 -52.7126 st johns|nl|ca
node.geo netspan.net-N46: 47.6062 -122.3321 seattle|wa|us
node.geo netspan.net-N47: 47.6062 -122.3321 seattle|wa|us
node.geo netspan.net-N48: 35.2271 -80.8431 charlotte|nc|us
node.geo netspan.net-N49: 35.2271 -80.8431 charlotte|nc|us
node.geo netspan.net-N50: 35.2271 -80.8431 charlotte|nc|us
node.geo netspan.net-N51: 35.2271 -80.8431 charlotte|nc|us
node.geo netspan.net-N52: 37.7590 -77.4803 ashland|va|us
node.geo netspan.net-N53: 37.7590 -77.4803 ashland|va|us
node.geo netspan.net-N54: 37.7590 -77.4803 ashland|va|us
node.geo netspan.net-N55: 45.5152 -122.6784 portland|or|us
node.geo netspan.net-N56: 45.5152 -122.6784 portland|or|us
node.geo netspan.net-N57: 35.0844 -106.6504 albuquerque|nm|us
node.geo netspan.net-N58: 35.0844 -106.6504 albuquerque|nm|us
node.geo netspan.net-N59: 35.0844 -106.6504 albuquerque|nm|us
node.geo netspan.net-N60: 30.2672 -97.7431 austin|tx|us
node.geo netspan.net-N61: 30.2672 -97.7431 austin|tx|us
node.geo netspan.net-N62: 30.2672 -97.7431 austin|tx|us
node.geo netspan.net-N63: 48.1351 11.5820 munich|by|de
node.geo netspan.net-N64: 48.1351 11.5820 munich|by|de
node.geo netspan.net-N65: 48.1351 11.5820 munich|by|de
node.geo netspan.net-N66: 48.1351 11.5820 munich|by|de
node.geo netspan.net-N67: 59.3293 18.0686 stockholm||se
node.geo netspan.net-N68: 59.3293 18.0686 stockholm||se
node.geo netspan.net-N69: 34.6937 135.5023 osaka||jp
node.geo netspan.net-N70: 34.6937 135.5023 osaka||jp
node.geo netspan.net-N71: 34.6937 135.5023 osaka||jp
node.geo netspan.net-N72: 34.6937 135.5023 osaka||jp
node.geo netspan.net-N73: 41.8781 -87.6298 chicago|il|us
node.geo netspan.net-N74: 41.8781 -87.6298 chicago|il|us
node.geo netspan.net-N75: 41.8781 -87.6298 chicago|il|us
node.geo netspan.net-N76: 41.8781 -87.6298 chicago|il|us
node.geo netspan.net-N77: 39.9526 -75.1652 philadelphia|pa|us
node.geo netspan.net-N78: 39.9526 -75.1652 philadelphia|pa|us
node.geo netspan.net-N79: 39.9526 -75.1652 philadelphia|pa|us
node.geo netspan.net-N80: 39.9526 -75.1652 philadelphia|pa|us
node.geo netspan.net-N81: 39.7392 -104.9903 denver|co|us
node.geo netspan.net-N82: 39.7392 -104.9903 denver|co|us
node.geo netspan.net-N83: 39.7392 -104.9903 denver|co|us
node.geo netspan.net-N84: 46.8139 -71.2080 quebec|qc|ca
node.geo netspan.net-N85: 46.8139 -71.2080 quebec|qc|ca
node.geo netspan.net-N86: 46.8139 -71.2080 quebec|qc|ca
node.geo netspan.net-N87: 46.8139 -71.2080 quebec|qc|ca
node.geo netspan.net-N88: 38.6270 -90.1994 st louis|mo|us
node.geo netspan.net-N89: 38.6270 -90.1994 st louis|mo|us
node.geo netspan.net-N90: 38.6270 -90.1994 st louis|mo|us
node.geo netspan.net-N91: 38.6270 -90.1994 st louis|mo|us
node.geo netspan.net-N92: 51.0447 -114.0719 calgary|ab|ca
node.geo netspan.net-N93: 51.0447 -114.0719 calgary|ab|ca
node.geo netspan.net-N94: 51.2277 6.7735 dusseldorf|nw|de
node.geo netspan.net-N95: 51.2277 6.7735 dusseldorf|nw|de
node.geo netspan.net-N96: 51.2277 6.7735 dusseldorf|nw|de
node.geo routeworks.co.uk-N1: 39.0171 -77.4600 ashburn|va|us
node.geo routeworks.co.uk-N2: 39.0171 -77.4600 ashburn|va|us
node.geo routeworks.co.uk-N3: 39.0171 -77.4600 ashburn|va|us
node.geo routeworks.co.uk-N4: 39.0171 -77.4600 ashburn|va|us
node.geo routeworks.co.uk-N5: 45.4740 9.1070 milan||it
node.geo routeworks.co.uk-N6: 45.4740 9.1070 milan||it
node.geo routeworks.co.uk-N7: 45.4740 9.1070 milan||it
node.geo routeworks.co.uk-N8: 45.4740 9.1070 milan||it
node.geo routeworks.co.uk-N9: 40.7780 -74.0661 secaucus|nj|us
node.geo routeworks.co.uk-N10: 40.7780 -74.0661 secaucus|nj|us
node.geo routeworks.co.uk-N11: 1.2976 103.7872 singapore||sg
node.geo routeworks.co.uk-N12: 1.2976 103.7872 singapore||sg
node.geo routeworks.co.uk-N13: 1.2976 103.7872 singapore||sg
node.geo routeworks.co.uk-N14: 40.7414 -74.0033 new york|ny|us
node.geo routeworks.co.uk-N15: 40.7414 -74.0033 new york|ny|us
node.geo routeworks.co.uk-N16: 41.8530 -87.6184 chicago|il|us
node.geo routeworks.co.uk-N17: 41.8530 -87.6184 chicago|il|us
node.geo routeworks.co.uk-N18: 41.8530 -87.6184 chicago|il|us
node.geo routeworks.co.uk-N19: 51.4939 -0.0214 london||gb
node.geo routeworks.co.uk-N20: 51.4939 -0.0214 london||gb
node.geo routeworks.co.uk-N21: 51.4939 -0.0214 london||gb
node.geo routeworks.co.uk-N22: 51.4939 -0.0214 london||gb
node.geo routeworks.co.uk-N23: 50.1189 8.7430 frankfurt am main|he|de
node.geo routeworks.co.uk-N24: 50.1189 8.7430 frankfurt am main|he|de
node.geo routeworks.co.uk-N25: 50.1189 8.7430 frankfurt am main|he|de
node.geo routeworks.co.uk-N26: 50.1189 8.7430 frankfurt am main|he|de
node.geo routeworks.co.uk-N27: -23.5320 -46.7050 sao paulo|sp|br
node.geo routeworks.co.uk-N28: -23.5320 -46.7050 sao paulo|sp|br
node.geo routeworks.co.uk-N29: -23.5320 -46.7050 sao paulo|sp|br
node.geo routeworks.co.uk-N30: -23.5320 -46.7050 sao paulo|sp|br
node.geo routeworks.co.uk-N31: 47.3871 8.5187 zurich|zh|ch
node.geo routeworks.co.uk-N32: 47.3871 8.5187 zurich|zh|ch
node.geo routeworks.co.uk-N33: 47.3871 8.5187 zurich|zh|ch
node.geo routeworks.co.uk-N34: 33.7572 -84.3930 atlanta|ga|us
node.geo routeworks.co.uk-N35: 33.7572 -84.3930 atlanta|ga|us
node.geo routeworks.co.uk-N36: 33.7572 -84.3930 atlanta|ga|us
node.geo routeworks.co.uk-N37: 33.7572 -84.3930 atlanta|ga|us
node.geo routeworks.co.uk-N38: 40.7197 -74.0089 new york|ny|us
node.geo routeworks.co.uk-N39: 40.7197 -74.0089 new york|ny|us
node.geo routeworks.co.uk-N40: 40.7197 -74.0089 new york|ny|us
node.geo routeworks.co.uk-N41: 40.7197 -74.0089 new york|ny|us
node.geo routeworks.co.uk-N42: 47.6146 -122.3393 seattle|wa|us
node.geo routeworks.co.uk-N43: 47.6146 -122.3393 seattle|wa|us
node.geo routeworks.co.uk-N44: 48.9358 2.3550 paris||fr
node.geo routeworks.co.uk-N45: 48.9358 2.3550 paris||fr
node.geo routeworks.co.uk-N46: 34.0561 -118.2366 los angeles|ca|us
node.geo routeworks.co.uk-N47: 34.0561 -118.2366 los angeles|ca|us
node.geo routeworks.co.uk-N48: -37.8183 144.9550 melbourne|vic|au
node.geo routeworks.co.uk-N49: -37.8183 144.9550 melbourne|vic|au
node.geo routeworks.co.uk-N50: -22.9230 -43.1730 rio de janeiro|rj|br
node.geo routeworks.co.uk-N51: -22.9230 -43.1730 rio de janeiro|rj|br
node.geo routeworks.co.uk-N52: -22.9230 -43.1730 rio de janeiro|rj|br
node.geo routeworks.co.uk-N53: -22.9230 -43.1730 rio de janeiro|rj|br
node.geo routeworks.co.uk-N54: 34.0479 -118.2562 los angeles|ca|us
node.geo routeworks.co.uk-N55: 34.0479 -118.2562 los angeles|ca|us
node.geo routeworks.co.uk-N56: 34.0479 -118.2562 los angeles|ca|us
node.geo routeworks.co.uk-N57: 34.0479 -118.2562 los angeles|ca|us
node.geo routeworks.co.uk-N58: 52.3561 4.9508 amsterdam||nl
node.geo routeworks.co.uk-N59: 52.3561 4.9508 amsterdam||nl
node.geo routeworks.co.uk-N60: 52.3561 4.9508 amsterdam||nl
node.geo routeworks.co.uk-N61: 32.8012 -96.8190 dallas|tx|us
node.geo routeworks.co.uk-N62: 32.8012 -96.8190 dallas|tx|us
node.geo routeworks.co.uk-N63: 50.0998 8.6320 frankfurt am main|he|de
node.geo routeworks.co.uk-N64: 50.0998 8.6320 frankfurt am main|he|de
node.geo routeworks.co.uk-N65: 50.0998 8.6320 frankfurt am main|he|de
node.geo routeworks.co.uk-N66: 50.0998 8.6320 frankfurt am main|he|de
node.geo routeworks.co.uk-N67: -26.1885 28.0700 johannesburg||za
node.geo routeworks.co.uk-N68: -26.1885 28.0700 johannesburg||za
node.geo backhaul.co.uk-N1: 45.8150 15.9819 zagreb||hr
node.geo backhaul.co.uk-N2: 45.8150 15.9819 zagreb||hr
node.geo backhaul.co.uk-N3: 45.8150 15.9819 zagreb||hr
node.geo backhaul.co.uk-N4: 51.5074 -0.1278 london||gb
node.geo backhaul.co.uk-N5: 51.5074 -0.1278 london||gb
node.geo backhaul.co.uk-N6: 51.5074 -0.1278 london||gb
node.geo backhaul.co.uk-N7: 51.5074 -0.1278 london||gb
node.geo backhaul.co.uk-N8: 51.5074 -0.1278 london||gb
node.geo backhaul.co.uk-N9: 42.1946 -122.7095 ashland|or|us
node.geo backhaul.co.uk-N10: 42.1946 -122.7095 ashland|or|us
node.geo backhaul.co.uk-N11: 51.5136 7.4653 dortmund|nw|de
node.geo backhaul.co.uk-N12: 51.5136 7.4653 dortmund|nw|de
node.geo backhaul.co.uk-N13: 51.5136 7.4653 dortmund|nw|de
node.geo backhaul.co.uk-N14: 51.5136 7.4653 dortmund|nw|de
node.geo backhaul.co.uk-N15: 51.5136 7.4653 dortmund|nw|de
node.geo backhaul.co.uk-N16: 37.1305 -113.5083 washington|ut|us
node.geo backhaul.co.uk-N17: 37.1305 -113.5083 washington|ut|us
node.geo backhaul.co.uk-N18: 37.1305 -113.5083 washington|ut|us
node.geo backhaul.co.uk-N19: 37.1305 -113.5083 washington|ut|us
node.geo backhaul.co.uk-N20: 37.1305 -113.5083 washington|ut|us
node.geo backhaul.co.uk-N21: -8.0476 -34.8770 recife|pe|br
node.geo backhaul.co.uk-N22: -8.0476 -34.8770 recife|pe|br
node.geo backhaul.co.uk-N23: 28.5383 -81.3792 orlando|fl|us
node.geo backhaul.co.uk-N24: 28.5383 -81.3792 orlando|fl|us
node.geo backhaul.co.uk-N25: 28.5383 -81.3792 orlando|fl|us
node.geo backhaul.co.uk-N26: 28.5383 -81.3792 orlando|fl|us
node.geo backhaul.co.uk-N27: 28.5383 -81.3792 orlando|fl|us
node.geo backhaul.co.uk-N28: 28.5383 -81.3792 orlando|fl|us
node.geo backhaul.co.uk-N29: 36.7213 -4.4214 malaga||es
node.geo backhaul.co.uk-N30: 36.7213 -4.4214 malaga||es
node.geo backhaul.co.uk-N31: 36.7213 -4.4214 malaga||es
node.geo backhaul.co.uk-N32: 36.7213 -4.4214 malaga||es
node.geo backhaul.co.uk-N33: 36.7213 -4.4214 malaga||es
node.geo backhaul.co.uk-N34: 45.4384 10.9916 verona||it
node.geo backhaul.co.uk-N35: 45.4384 10.9916 verona||it
node.geo backhaul.co.uk-N36: 45.4384 10.9916 verona||it
node.geo interpath.net-N1: 60.1699 24.9384 helsinki||fi
node.geo interpath.net-N2: 60.1699 24.9384 helsinki||fi
node.geo interpath.net-N3: 60.1699 24.9384 helsinki||fi
node.geo interpath.net-N4: 60.1699 24.9384 helsinki||fi
node.geo interpath.net-N5: 60.1699 24.9384 helsinki||fi
node.geo interpath.net-N6: 60.1699 24.9384 helsinki||fi
node.geo interpath.net-N7: 60.1699 24.9384 helsinki||fi
node.geo interpath.net-N8: 60.1699 24.9384 helsinki||fi
node.geo interpath.net-N9: 49.8951 -97.1384 winnipeg|mb|ca
node.geo interpath.net-N10: 49.8951 -97.1384 winnipeg|mb|ca
node.geo interpath.net-N11: 49.8951 -97.1384 winnipeg|mb|ca
node.geo interpath.net-N12: 49.8951 -97.1384 winnipeg|mb|ca
node.geo interpath.net-N13: 49.8951 -97.1384 winnipeg|mb|ca
node.geo interpath.net-N14: 61.2181 -149.9003 anchorage|ak|us
node.geo interpath.net-N15: 61.2181 -149.9003 anchorage|ak|us
node.geo interpath.net-N16: 61.2181 -149.9003 anchorage|ak|us
node.geo interpath.net-N17: 61.2181 -149.9003 anchorage|ak|us
node.geo interpath.net-N18: 61.2181 -149.9003 anchorage|ak|us
node.geo interpath.net-N19: 61.2181 -149.9003 anchorage|ak|us
node.geo interpath.net-N20: 61.2181 -149.9003 anchorage|ak|us
node.geo interpath.net-N21: 61.2181 -149.9003 anchorage|ak|us
node.geo interpath.net-N22: 39.1031 -84.5120 cincinnati|oh|us
node.geo interpath.net-N23: 39.1031 -84.5120 cincinnati|oh|us
node.geo interpath.net-N24: 39.1031 -84.5120 cincinnati|oh|us
node.geo interpath.net-N25: 39.1031 -84.5120 cincinnati|oh|us
node.geo interpath.net-N26: 39.1031 -84.5120 cincinnati|oh|us
node.geo interpath.net-N27: 39.1031 -84.5120 cincinnati|oh|us
node.geo interpath.net-N28: 48.7758 9.1829 stuttgart|bw|de
node.geo interpath.net-N29: 48.7758 9.1829 stuttgart|bw|de
node.geo interpath.net-N30: 48.7758 9.1829 stuttgart|bw|de
node.geo interpath.net-N31: 48.7758 9.1829 stuttgart|bw|de
node.geo interpath.net-N32: 48.7758 9.1829 stuttgart|bw|de
node.geo interpath.net-N33: 29.7604 -95.3698 houston|tx|us
node.geo interpath.net-N34: 29.7604 -95.3698 houston|tx|us
node.geo interpath.net-N35: 40.4168 -3.7038 madrid||es
node.geo interpath.net-N36: 40.4168 -3.7038 madrid||es
node.geo interpath.net-N37: 40.4168 -3.7038 madrid||es
node.geo interpath.net-N38: 40.4168 -3.7038 madrid||es
node.geo interpath.net-N39: 40.4168 -3.7038 madrid||es
node.geo interpath.net-N40: 34.7304 -86.5861 huntsville|al|us
node.geo interpath.net-N41: 34.7304 -86.5861 huntsville|al|us
node.geo interpath.net-N42: 34.7304 -86.5861 huntsville|al|us
node.geo interpath.net-N43: 34.7304 -86.5861 huntsville|al|us
node.geo interpath.net-N44: 34.7304 -86.5861 huntsville|al|us
node.geo interpath.net-N45: 39.9612 -82.9988 columbus|oh|us
node.geo interpath.net-N46: 39.9612 -82.9988 columbus|oh|us
node.geo lightwave.co.uk-N1: -1.2921 36.8219 nairobi||ke
node.geo lightwave.co.uk-N2: -1.2921 36.8219 nairobi||ke
node.geo lightwave.co.uk-N3: -1.2921 36.8219 nairobi||ke
node.geo lightwave.co.uk-N4: -1.2921 36.8219 nairobi||ke
node.geo lightwave.co.uk-N5: 41.1400 -104.8202 cheyenne|wy|us
node.geo lightwave.co.uk-N6: 41.1400 -104.8202 cheyenne|wy|us
node.geo lightwave.co.uk-N7: 41.1400 -104.8202 cheyenne|wy|us
node.geo lightwave.co.uk-N8: 41.1400 -104.8202 cheyenne|wy|us
node.geo lightwave.co.uk-N9: 41.1400 -104.8202 cheyenne|wy|us
node.geo lightwave.co.uk-N10: 36.7213 -4.4214 malaga||es
node.geo lightwave.co.uk-N11: 36.7213 -4.4214 malaga||es
node.geo lightwave.co.uk-N12: 36.7213 -4.4214 malaga||es
node.geo lightwave.co.uk-N13: 36.7213 -4.4214 malaga||es
node.geo lightwave.co.uk-N14: 36.7213 -4.4214 malaga||es
node.geo lightwave.co.uk-N15: 52.3759 9.7320 hanover|ni|de
node.geo lightwave.co.uk-N16: 52.3759 9.7320 hanover|ni|de
node.geo lightwave.co.uk-N17: 52.3759 9.7320 hanover|ni|de
node.geo lightwave.co.uk-N18: 52.3759 9.7320 hanover|ni|de
node.geo lightwave.co.uk-N19: 38.2527 -85.7585 louisville|ky|us
node.geo lightwave.co.uk-N20: 38.2527 -85.7585 louisville|ky|us
node.geo lightwave.co.uk-N21: 38.2527 -85.7585 louisville|ky|us
node.geo lightwave.co.uk-N22: 38.2527 -85.7585 louisville|ky|us
node.geo lightwave.co.uk-N23: 38.2527 -85.7585 louisville|ky|us
node.geo lightwave.co.uk-N24: 40.8518 14.2681 naples||it
node.geo lightwave.co.uk-N25: 40.8518 14.2681 naples||it
node.geo lightwave.co.uk-N26: 44.9778 -93.2650 minneapolis|mn|us
node.geo lightwave.co.uk-N27: 44.9778 -93.2650 minneapolis|mn|us
node.geo lightwave.co.uk-N28: 44.9778 -93.2650 minneapolis|mn|us
node.geo isp00.co.uk-N1: 41.2565 -95.9345 omaha|ne|us
node.geo isp00.co.uk-N2: 41.2565 -95.9345 omaha|ne|us
node.geo isp01.de-N1: 45.5017 -73.5673 montreal|qc|ca
node.geo isp01.de-N2: 45.5017 -73.5673 montreal|qc|ca
node.geo isp02.net-N1: -1.4558 -48.4902 belem|pa|br
node.geo isp02.net-N2: -1.4558 -48.4902 belem|pa|br
node.geo isp02.net-N3: -2.1894 -79.8891 guayaquil||ec
node.geo isp02.net-N4: -2.1894 -79.8891 guayaquil||ec
node.geo isp03.net.au-N1: 35.2220 -101.8313 amarillo|tx|us
node.geo isp03.net.au-N2: 35.2220 -101.8313 amarillo|tx|us
node.geo noise00.de-N0: 41.2992 -91.6929 washington|ia|us
node.geo noise00.de-N1: 34.6937 135.5023 osaka||jp
node.geo noise00.de-N2: -41.2866 174.7756 wellington||nz
node.geo noise00.de-N3: 50.4452 -104.6189 regina|sk|ca
node.geo noise01.io-N0: 36.1627 -86.7816 nashville|tn|us
node.geo noise01.io-N1: 37.1305 -113.5083 washington|ut|us
node.geo noise01.io-N2: 51.3397 12.3731 leipzig|sn|de
node.geo noise01.io-N3: 22.5726 88.3639 kolkata||in
node.geo noise01.io-N4: -32.9283 151.7817 newcastle|nsw|au
node.geo noise01.io-N5: -36.8485 174.7633 auckland||nz
node.geo noise01.io-N6: 38.7223 -9.1393 lisbon||pt
node.geo noise01.io-N7: 41.8240 -71.4128 providence|ri|us
node.geo noise01.io-N8: 47.6062 -122.3321 seattle|wa|us
node.geo noise01.io-N9: 37.5407 -77.4360 richmond|va|us
node.geo noise01.io-N10: 53.2194 6.5665 groningen||nl
node.geo noise01.io-N11: -16.4897 -68.1193 la paz||bo
node.geo noise01.io-N12: 29.9511 -90.0715 new orleans|la|us
node.geo noise02.com-N0: 22.6273 120.3014 kaohsiung||tw
node.geo noise02.com-N1: 10.8231 106.6297 ho chi minh city||vn
node.geo noise02.com-N2: 41.8240 -71.4128 providence|ri|us
node.geo noise02.com-N3: 42.8864 -78.8784 buffalo|ny|us
node.geo noise02.com-N4: 42.9956 -71.4548 manchester|nh|us
node.geo noise02.com-N5: -1.2921 36.8219 nairobi||ke
node.geo noise02.com-N6: 50.2649 19.0238 katowice||pl
node.geo noise02.com-N7: 43.0731 -89.4012 madison|wi|us
node.geo noise02.com-N8: 31.2304 121.4737 shanghai||cn
node.geo noise02.com-N9: 43.2630 -2.9350 bilbao||es
node.geo noise02.com-N10: 44.0521 -123.0868 eugene|or|us
node.geo noise02.com-N11: 29.9511 -90.0715 new orleans|la|us
node.geo noise02.com-N12: 55.7558 37.6173 moscow||ru
node.geo noise02.com-N13: -1.2921 36.8219 nairobi||ke
node.geo noise02.com-N14: 47.6588 -117.4260 spokane|wa|us
node.geo noise02.com-N15: 29.3759 47.9774 kuwait city||kw
node.geo noise02.com-N16: 25.7617 -80.1918 miami|fl|us
node.geo noise02.com-N17: 42.0625 -104.1841 torrington|wy|us
node.geo noise03.de-N0: 52.3676 4.9041 amsterdam||nl
node.geo noise03.de-N1: -31.4201 -64.1888 cordoba||ar
node.geo noise03.de-N2: 5.3600 -4.0083 abidjan||ci
node.geo noise03.de-N3: 59.3293 18.0686 stockholm||se
node.geo noise03.de-N4: 36.8508 -76.2859 norfolk|va|us
node.geo noise03.de-N5: -1.9706 30.1044 kigali||rw
node.geo noise03.de-N6: 4.7110 -74.0721 bogota||co
node.geo noise03.de-N7: 37.6872 -97.3301 wichita|ks|us
node.geo noise03.de-N8: 45.4384 10.9916 verona||it
node.geo noise03.de-N9: 43.5446 -96.7311 sioux falls|sd|us
node.geo noise03.de-N10: 52.2297 21.0122 warsaw||pl
node.geo noise03.de-N11: -22.5609 17.0658 windhoek||na
node.geo noise03.de-N12: 43.6150 -116.2023 boise|id|us
node.geo noise03.de-N13: 14.7167 -17.4677 dakar||sn
node.geo noise03.de-N14: 51.0447 -114.0719 calgary|ab|ca
node.geo noise03.de-N15: 17.3850 78.4867 hyderabad||in
node.geo noise03.de-N16: 45.7640 4.8357 lyon||fr
node.geo anon-N0: 51.2194 4.4025 antwerp||be
node.geo anon-N1: 51.1079 17.0385 wroclaw||pl
node.geo anon-N2: -19.9167 -43.9345 belo horizonte|mg|br
node.geo anon-N3: 37.3382 -121.8863 san jose|ca|us
node.geo anon-N4: 57.7089 11.9746 gothenburg||se
node.geo anon-N5: -8.0476 -34.8770 recife|pe|br
node.geo anon-N6: 52.3676 4.9041 amsterdam||nl
node.geo anon-N7: 30.4515 -91.1871 baton rouge|la|us
node.geo anon-N8: 41.6528 -83.5379 toledo|oh|us
node.geo anon-N9: -3.1190 -60.0217 manaus|am|br
node.geo anon-N10: 43.5446 -96.7311 sioux falls|sd|us
node.geo anon-N11: 52.1332 -106.6700 saskatoon|sk|ca
node.geo anon-N12: 51.2277 6.7735 dusseldorf|nw|de
node.geo anon-N13: 49.2827 -123.1207 vancouver|bc|ca
node.geo anon-N14: 44.9778 -93.2650 minneapolis|mn|us
node.geo anon-N15: -12.9777 -38.5016 salvador|ba|br
node.geo anon-N16: -1.2921 36.8219 nairobi||ke
node.geo anon-N17: -41.2866 174.7756 wellington||nz
node.geo anon-N18: 28.1235 -15.4363 las palmas||es
node.geo anon-N19: 43.0731 -89.4012 madison|wi|us
node.geo anon-N20: 49.1951 16.6068 brno||cz
node.geo anon-N21: 0.3476 32.5825 kampala||ug
node.geo anon-N22: 38.7223 -9.1393 lisbon||pt
node.geo anon-N23: -25.4284 -49.2733 curitiba|pr|br
node.geo anon-N24: 18.4655 -66.1057 san juan||pr
node.geo anon-N25: 35.6892 51.3890 tehran||ir
node.geo anon-N26: 41.1400 -104.8202 cheyenne|wy|us
node.geo anon-N27: 38.2682 140.8694 sendai||jp
node.geo anon-N28: 34.1808 -118.3090 burbank|ca|us
node.geo anon-N29: -41.2866 174.7756 wellington||nz
node.geo anon-N30: 48.5734 7.7521 strasbourg||fr
node.geo anon-N31: 41.8240 -71.4128 providence|ri|us
node.geo anon-N32: 54.3520 18.6466 gdansk||pl
node.geo anon-N33: 48.1486 17.1077 bratislava||sk
node.geo anon-N34: 49.8951 -97.1384 winnipeg|mb|ca
node.geo anon-N35: 35.4676 -97.5164 oklahoma city|ok|us
node.geo anon-N36: -12.9777 -38.5016 salvador|ba|br
node.geo anon-N37: 45.7640 4.8357 lyon||fr
node.geo anon-N38: 36.1699 -115.1398 las vegas|nv|us
node.geo anon-N39: 6.5244 3.3792 lagos||ng
node.geo anon-N40: 32.5252 -93.7502 shreveport|la|us
node.geo anon-N41: 21.0278 105.8342 hanoi||vn
node.geo anon-N42: 40.1740 -80.2462 washington|pa|us
node.geo anon-N43: -38.1499 144.3617 geelong|vic|au
node.geo anon-N44: 34.0007 -81.0348 columbia|sc|us
node.geo anon-N45: 44.4056 8.9463 genoa||it
node.geo anon-N46: 52.3759 9.7320 hanover|ni|de
node.geo anon-N47: 25.2854 51.5310 doha||qa
node.geo anon-N48: 34.0522 131.8063 tokuyama||jp
node.geo anon-N49: 51.5136 7.4653 dortmund|nw|de
node.geo anon-N50: 43.6532 -79.3832 toronto|on|ca
node.geo anon-N51: 47.2184 -1.5536 nantes||fr
node.geo anon-N52: 53.4808 -2.2426 manchester||gb
node.geo anon-N53: 45.5152 -122.6784 portland|or|us
node.geo anon-N54: 39.7817 -89.6501 springfield|il|us
node.geo anon-N55: 14.5995 120.9842 manila||ph
node.geo anon-N56: 10.4806 -66.9036 caracas||ve
node.geo anon-N57: -16.4897 -68.1193 la paz||bo
node.geo anon-N58: 42.1946 -122.7095 ashland|or|us
node.geo anon-N59: 40.4168 -3.7038 madrid||es
node.geo anon-N60: 49.8951 -97.1384 winnipeg|mb|ca
node.geo anon-N61: -38.1499 144.3617 geelong|vic|au
node.geo anon-N62: 60.3913 5.3221 bergen||no
node.geo anon-N63: 5.6037 -0.1870 accra||gh
node.geo anon-N64: 42.8864 -78.8784 buffalo|ny|us
node.geo anon-N65: 41.1171 16.8719 bari||it
node.geo anon-N66: 48.8566 2.3522 paris||fr
node.geo anon-N67: 24.8607 67.0011 karachi||pk
node.geo anon-N68: -22.5609 17.0658 windhoek||na
node.geo anon-N69: 40.7128 -74.0060 new york|ny|us
node.geo anon-N70: 18.4655 -66.1057 san juan||pr
node.geo anon-N71: 39.1031 -84.5120 cincinnati|oh|us
node.geo anon-N72: -0.1807 -78.4678 quito||ec
node.geo anon-N73: 5.4164 100.3327 penang||my
node.geo anon-N74: 38.2682 140.8694 sendai||jp
node.geo anon-N75: 46.7712 23.6236 cluj-napoca||ro
node.geo anon-N76: 52.0907 5.1214 utrecht||nl
node.geo anon-N77: 34.3416 108.9398 xian||cn
node.geo anon-N78: 23.5880 58.3829 muscat||om
node.geo anon-N79: 54.6872 25.2797 vilnius||lt
node.geo anon-N80: 40.8518 14.2681 naples||it
node.geo anon-N81: 33.8938 35.5018 beirut||lb
node.geo anon-N82: -34.6037 -58.3816 buenos aires||ar
node.geo anon-N83: 48.5734 7.7521 strasbourg||fr
node.geo anon-N84: 4.7110 -74.0721 bogota||co
node.geo anon-N85: 52.0705 4.3007 the hague||nl
node.geo anon-N86: 43.2220 76.8512 almaty||kz
node.geo anon-N87: -35.2809 149.1300 canberra|act|au
node.geo anon-N88: 29.3759 47.9774 kuwait city||kw
node.geo anon-N89: 27.8770 -97.3233 portland|tx|us
node.geo anon-N90: 52.3676 4.9041 amsterdam||nl
node.geo anon-N91: 38.7509 -77.4753 manassas|va|us
node.geo anon-N92: 54.6872 25.2797 vilnius||lt
node.geo anon-N93: 50.1109 8.6821 frankfurt am main|he|de
node.geo anon-N94: -25.2637 -57.5759 asuncion||py
node.geo anon-N95: 23.5880 58.3829 muscat||om
node.geo anon-N96: 30.0444 31.2357 cairo||eg
node.geo anon-N97: 19.8301 -90.5349 campeche||mx
node.geo anon-N98: 32.4610 -84.9877 columbus|ga|us
node.geo anon-N99: 42.3601 -71.0589 boston|ma|us
node.geo anon-N100: 4.7110 -74.0721 bogota||co
node.geo anon-N101: 31.7619 -106.4850 el paso|tx|us
node.geo anon-N102: 39.9612 -82.9988 columbus|oh|us
node.geo anon-N103: 19.8301 -90.5349 campeche||mx
node.geo anon-N104: 42.2626 -71.8023 worcester|ma|us
node.geo anon-N105: 37.3382 -121.8863 san jose|ca|us
node.geo anon-N106: 35.6762 139.6503 tokyo||jp
node.geo anon-N107: 31.5493 -97.1467 waco|tx|us
node.geo anon-N108: 44.6488 -63.5752 halifax|ns|ca
node.geo anon-N109: 41.3198 -81.6268 brecksville|oh|us
node.geo anon-N110: 37.5079 15.0830 catania||it
node.geo anon-N111: 36.7213 -4.4214 malaga||es
node.geo anon-N112: 51.2277 6.7735 dusseldorf|nw|de
node.geo anon-N113: 11.5564 104.9282 phnom penh||kh
node.geo anon-N114: 45.4215 -75.6972 ottawa|on|ca
node.geo anon-N115: -24.6282 25.9231 gaborone||bw
node.geo anon-N116: 57.0488 9.9217 aalborg||dk
node.geo anon-N117: 30.3322 -81.6557 jacksonville|fl|us
node.geo anon-N118: 42.6526 -73.7562 albany|ny|us
node.geo anon-N119: 56.1629 10.2039 aarhus||dk
node.geo anon-N120: 57.7089 11.9746 gothenburg||se
node.geo anon-N121: 41.9973 21.4280 skopje||mk
node.geo anon-N122: 38.6270 -90.1994 st louis|mo|us
node.geo anon-N123: 43.2630 -2.9350 bilbao||es
node.geo anon-N124: 37.5665 126.9780 seoul||kr
node.geo anon-N125: 51.2277 6.7735 dusseldorf|nw|de
node.geo anon-N126: 22.5431 114.0579 shenzhen||cn
node.geo anon-N127: -24.6282 25.9231 gaborone||bw
node.geo anon-N128: 10.8231 106.6297 ho chi minh city||vn
node.geo anon-N129: 35.0844 -106.6504 albuquerque|nm|us
node.geo anon-N130: 37.2090 -93.2923 springfield|mo|us
node.geo anon-N131: 34.0522 -118.2437 los angeles|ca|us
node.geo anon-N132: 38.9072 -77.0369 washington|dc|us
node.geo anon-N133: 13.0827 80.2707 chennai||in
node.geo anon-N134: 4.7110 -74.0721 bogota||co
node.geo anon-N135: 19.0760 72.8777 mumbai||in
node.geo anon-N136: 33.6844 73.0479 islamabad||pk
node.geo anon-N137: 50.0647 19.9450 krakow||pl
node.geo anon-N138: 63.4305 10.3951 trondheim||no
node.geo anon-N139: 41.9973 21.4280 skopje||mk
node.geo anon-N140: 51.3397 12.3731 leipzig|sn|de
node.geo anon-N141: 38.8339 -104.8214 colorado springs|co|us
node.geo anon-N142: 53.5511 9.9937 hamburg|hh|de
node.geo anon-N143: 51.0447 -114.0719 calgary|ab|ca
node.geo anon-N144: 38.2682 140.8694 sendai||jp
node.geo anon-N145: 21.4858 39.1925 jeddah||sa
node.geo anon-N146: 32.5252 -93.7502 shreveport|la|us
node.geo anon-N147: 42.1946 -122.7095 ashland|or|us
node.geo anon-N148: 47.6588 -117.4260 spokane|wa|us
node.geo anon-N149: 35.6892 51.3890 tehran||ir
node.geo anon-N150: 27.2530 86.6700 lamidanda||np
node.geo anon-N151: 28.7041 77.1025 delhi||in
node.geo anon-N152: 41.8781 -87.6298 chicago|il|us
node.geo anon-N153: 44.4268 26.1025 bucharest||ro
node.geo anon-N154: 42.5122 14.1471 montesilvano marina||it
node.geo anon-N155: 60.3913 5.3221 bergen||no
node.geo anon-N156: 25.2854 51.5310 doha||qa
node.geo anon-N157: -19.9167 -43.9345 belo horizonte|mg|br
node.geo anon-N158: 34.6937 135.5023 osaka||jp
node.geo anon-N159: 32.7767 -96.7970 dallas|tx|us
node.geo anon-N160: -15.3875 28.3228 lusaka||zm
node.geo anon-N161: -37.8136 144.9631 melbourne|vic|au
node.geo anon-N162: 30.5728 104.0668 chengdu||cn
node.geo anon-N163: 50.0647 19.9450 krakow||pl
node.geo anon-N164: 10.3157 123.8854 cebu||ph
node.geo anon-N165: 31.2304 121.4737 shanghai||cn
node.geo anon-N166: -27.4698 153.0251 brisbane|qld|au
node.geo anon-N167: 41.2565 -95.9345 omaha|ne|us
node.geo anon-N168: 54.9000 -1.5200 washington||gb
node.geo anon-N169: 8.9824 -79.5199 panama city||pa
node.geo anon-N170: 35.6762 139.6503 tokyo||jp
node.geo anon-N171: 53.2194 6.5665 groningen||nl
node.geo anon-N172: -23.5505 -46.6333 sao paulo|sp|br
node.geo anon-N173: -43.5321 172.6362 christchurch||nz
node.geo anon-N174: -7.2575 112.7521 surabaya||id
node.geo anon-N175: 37.7590 -77.4803 ashland|va|us
node.geo anon-N176: 37.4419 -122.1430 palo alto|ca|us
node.geo anon-N177: 35.2220 -101.8313 amarillo|tx|us
node.geo anon-N178: 42.3314 -83.0458 detroit|mi|us
node.geo anon-N179: 52.2292 5.1669 hilversum||nl
node.geo anon-N180: 18.4655 -66.1057 san juan||pr
node.geo anon-N181: -8.0476 -34.8770 recife|pe|br
node.geo anon-N182: 33.7490 -84.3880 atlanta|ga|us
node.geo anon-N183: 46.0569 14.5058 ljubljana||si
node.geo anon-N184: -37.7870 175.2793 hamilton||nz
node.geo anon-N185: -3.7327 -38.5270 fortaleza|ce|br
node.geo anon-N186: 35.2220 -101.8313 amarillo|tx|us
node.geo anon-N187: 34.0522 131.8063 tokuyama||jp
node.geo anon-N188: 43.2557 -79.8711 hamilton|on|ca
node.geo anon-N189: 39.7817 -89.6501 springfield|il|us
node.geo anon-N190: 43.0481 -76.1474 syracuse|ny|us
node.geo anon-N191: 35.9606 -83.9207 knoxville|tn|us
node.geo anon-N192: 43.2557 -79.8711 hamilton|on|ca
node.geo anon-N193: 50.4501 30.5234 kyiv||ua
node.geo anon-N194: 25.7617 -80.1918 miami|fl|us
node.geo anon-N195: 59.4370 24.7536 tallinn||ee
node.geo anon-N196: 47.3769 8.5417 zurich|zh|ch
node.geo anon-N197: 43.2220 76.8512 almaty||kz
node.geo anon-N198: 40.1740 -80.2462 washington|pa|us
node.geo anon-N199: 43.7696 11.2558 florence||it
node.geo anon-N200: 14.7167 -17.4677 dakar||sn
node.geo anon-N201: 49.2827 -123.1207 vancouver|bc|ca
node.geo anon-N202: 43.2965 5.3698 marseille||fr
node.geo anon-N203: 42.7654 -71.4676 nashua|nh|us
node.geo anon-N204: 38.6592 -87.1728 washington|in|us
node.geo anon-N205: 46.2044 6.1432 geneva|ge|ch
node.geo anon-N206: 52.2292 5.1669 hilversum||nl
node.geo anon-N207: -6.7714 -79.8409 chiclayo||pe
node.geo anon-N208: 50.6292 3.0573 lille||fr
node.geo anon-N209: -38.1499 144.3617 geelong|vic|au
node.geo anon-N210: 40.7036 -89.4073 washington|il|us
node.geo anon-N211: 36.0726 -79.7920 greensboro|nc|us
node.geo anon-N212: 19.4326 -99.1332 mexico city||mx
node.geo anon-N213: 51.2194 4.4025 antwerp||be
node.geo anon-N214: 50.2649 19.0238 katowice||pl
node.geo anon-N215: -6.7714 -79.8409 chiclayo||pe
node.geo anon-N216: 51.0504 13.7373 dresden|sn|de
node.geo anon-N217: 42.1015 -72.5898 springfield|ma|us
node.geo anon-N218: 34.7304 -86.5861 huntsville|al|us
node.geo anon-N219: 14.7167 -17.4677 dakar||sn
node.geo anon-N220: 40.7587 -74.9824 washington|nj|us
node.geo anon-N221: -43.5321 172.6362 christchurch||nz
node.geo anon-N222: 52.3874 4.6462 haarlem||nl
node.geo anon-N223: 38.1157 13.3615 palermo||it
node.geo anon-N224: 40.1740 -80.2462 washington|pa|us
node.geo anon-N225: -25.2637 -57.5759 asuncion||py
node.geo anon-N226: 29.3759 47.9774 kuwait city||kw
node.geo anon-N227: 34.7465 -92.2896 little rock|ar|us
node.geo anon-N228: 55.8642 -4.2518 glasgow||gb
node.geo anon-N229: 53.0793 8.8017 bremen|hb|de
node.geo anon-N230: 45.4642 9.1900 milan||it
node.geo anon-N231: -26.2041 28.0473 johannesburg||za
node.geo anon-N232: 32.2226 -110.9747 tucson|az|us
node.geo anon-N233: 32.0603 118.7969 nanjing||cn
node.geo anon-N234: -43.5321 172.6362 christchurch||nz
node.geo anon-N235: 35.6892 51.3890 tehran||ir
node.geo anon-N236: 41.4993 -81.6944 cleveland|oh|us
node.geo anon-N237: 29.4316 106.9123 chongqing||cn
node.geo anon-N238: 36.1627 -86.7816 nashville|tn|us
node.geo anon-N239: 43.1566 -77.6088 rochester|ny|us
node.geo anon-N240: 47.6062 -122.3321 seattle|wa|us
node.geo anon-N241: 42.9634 -85.6681 grand rapids|mi|us
node.geo anon-N242: 37.4419 -122.1430 palo alto|ca|us
node.geo anon-N243: 3.1390 101.6869 kuala lumpur||my
node.geo anon-N244: 34.7465 -92.2896 little rock|ar|us
node.geo anon-N245: 44.6488 -63.5752 halifax|ns|ca
node.geo anon-N246: 41.1171 16.8719 bari||it
node.geo anon-N247: 63.4305 10.3951 trondheim||no
node.geo anon-N248: 55.9533 -3.1883 edinburgh||gb
node.geo anon-N249: 38.4784 -82.6379 ashland|ky|us
node.geo anon-N250: 13.7563 100.5018 bangkok||th
node.geo anon-N251: 38.0406 -84.5037 lexington|ky|us
node.geo anon-N252: 53.1905 -2.8870 edge||gb
node.geo anon-N253: 55.9533 -3.1883 edinburgh||gb
node.geo anon-N254: 37.7022 -121.9358 dublin|ca|us
node.geo anon-N255: 40.6401 22.9444 thessaloniki||gr
node.geo anon-N256: 51.2194 4.4025 antwerp||be
node.geo anon-N257: 39.7817 -89.6501 springfield|il|us
node.geo anon-N258: 35.1796 129.0756 busan||kr
node.geo anon-N259: 42.4618 14.2161 pescara||it
node.geo anon-N260: 39.7589 -84.1916 dayton|oh|us
node.geo anon-N261: 41.4993 -81.6944 cleveland|oh|us
node.geo anon-N262: 11.5564 104.9282 phnom penh||kh
node.geo anon-N263: 30.3322 -81.6557 jacksonville|fl|us
node.geo anon-N264: 41.2565 -95.9345 omaha|ne|us
node.geo anon-N265: 42.1946 -122.7095 ashland|or|us
node.geo anon-N266: 33.5186 -86.8104 birmingham|al|us
node.geo anon-N267: 38.9072 -77.0369 washington|dc|us
node.geo anon-N268: 48.1173 -1.6778 rennes||fr
node.geo anon-N269: 35.5466 -77.0522 washington|nc|us
node.geo anon-N270: -30.0346 -51.2177 porto alegre|rs|br
node.geo anon-N271: 0.3476 32.5825 kampala||ug
node.geo anon-N272: 35.1815 136.9066 nagoya||jp
node.geo anon-N273: 50.6292 3.0573 lille||fr
node.geo anon-N274: 41.8781 -87.6298 chicago|il|us
node.geo anon-N275: -6.2088 106.8456 jakarta||id
node.geo anon-N276: 37.7022 -121.9358 dublin|ca|us
node.geo anon-N277: 20.6597 -103.3496 guadalajara||mx
node.geo anon-N278: 51.9244 4.4777 rotterdam||nl
node.geo anon-N279: 13.7563 100.5018 bangkok||th
node.geo anon-N280: 0.3476 32.5825 kampala||ug
node.geo anon-N281: 53.5461 -113.4938 edmonton|ab|ca
node.geo anon-N282: 16.0544 108.2022 da nang||vn
node.geo anon-N283: 43.6591 -70.2568 portland|me|us
node.geo anon-N284: 59.9311 30.3609 st petersburg||ru
node.geo anon-N285: 35.5466 -77.0522 washington|nc|us
