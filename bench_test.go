// Package hoiho_bench regenerates every table and figure of the paper's
// evaluation as Go benchmarks. Each benchmark prints the rows it
// reproduces once (so `go test -bench . -benchmem` doubles as the
// experiment harness; `cmd/geoeval` prints the same rows without the
// timing) and then measures the experiment's computation over cached
// worlds.
//
// Experiment index (see DESIGN.md §3):
//
//	BenchmarkTable1_ITDKSummary        paper Table 1
//	BenchmarkTable2_Coverage           paper Table 2
//	BenchmarkTable3_Classification     paper Table 3
//	BenchmarkTable4_GeohintTypes       paper Table 4
//	BenchmarkTable5_LearnedHints       paper Table 5
//	BenchmarkTable6_HintValidation     paper Table 6
//	BenchmarkFig5_RTTCDF               paper Figure 5
//	BenchmarkFig9_MethodComparison     paper Figure 9
//	BenchmarkFig10_LearnedHintProps    paper Figure 10
//	BenchmarkFig11_HintCorrectness     paper Figure 11
//	BenchmarkAblation_NoLearnedHints       §6.1 ablation
//	BenchmarkAblation_TracerouteOnly       DRoP-style constraint ablation (§3.3 critique)
//	BenchmarkAblation_RankingPriors        facility/population prior ablation (§5.4)
//	BenchmarkAblation_PPVThreshold         usability threshold sweep (§5.5)
//	BenchmarkAblation_CongruenceThreshold  congruent-router threshold sweep (§5.4)
//	BenchmarkPipeline_FullRun              end-to-end pipeline cost, sequential (Workers=1)
//	BenchmarkRunParallel                   same corpus, Workers=GOMAXPROCS worker pool
//	BenchmarkRunParallelTraced             worker pool with span tracing enabled
//	BenchmarkStage2                        stage-2 tagging of one suffix group
//	BenchmarkGeolocBatch                   geoloc.Index batch lookups, warm cache
//	BenchmarkGoldenEndToEnd                load + learn + write over testdata/golden
//	                                       (the corpus cmd/geobench records trajectories on)
package hoiho_bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"

	"hoiho/internal/core"
	"hoiho/internal/eval"
	"hoiho/internal/geoloc"
	"hoiho/internal/obs"
	"hoiho/internal/rtt"
	"hoiho/internal/synth"
)

var (
	suiteOnce sync.Once
	suite     *eval.Suite
	suiteErr  error
)

func loadSuite(b *testing.B) *eval.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = eval.Run(eval.PresetNames, 1.0, core.DefaultConfig())
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suite
}

var printOnce sync.Map

// printExperiment emits an experiment's rows exactly once per process.
func printExperiment(name, body string) {
	if _, dup := printOnce.LoadOrStore(name, true); dup {
		return
	}
	fmt.Printf("\n== %s ==\n%s", name, body)
}

func BenchmarkTable1_ITDKSummary(b *testing.B) {
	s := loadSuite(b)
	printExperiment("Table 1: ITDK summaries", eval.ComputeTable1(s.Worlds).Format())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eval.ComputeTable1(s.Worlds)
	}
}

func BenchmarkTable2_Coverage(b *testing.B) {
	s := loadSuite(b)
	printExperiment("Table 2: coverage of usable NCs",
		eval.ComputeTable2(s.Worlds, s.Results).Format())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eval.ComputeTable2(s.Worlds, s.Results)
	}
}

func BenchmarkTable3_Classification(b *testing.B) {
	s := loadSuite(b)
	printExperiment("Table 3: classification of NCs",
		eval.ComputeTable3(s.Worlds, s.Results).Format())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eval.ComputeTable3(s.Worlds, s.Results)
	}
}

func BenchmarkTable4_GeohintTypes(b *testing.B) {
	s := loadSuite(b)
	printExperiment("Table 4: geohint types and annotations",
		eval.ComputeTable4(s.Results[0]).Format())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eval.ComputeTable4(s.Results[0])
	}
}

func BenchmarkTable5_LearnedHints(b *testing.B) {
	s := loadSuite(b)
	printExperiment("Table 5: most frequently learned 3-letter geohints",
		eval.ComputeTable5Multi(s.Results, s.Worlds[0].Dict, 1).Format())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eval.ComputeTable5Multi(s.Results, s.Worlds[0].Dict, 1)
	}
}

func BenchmarkTable6_HintValidation(b *testing.B) {
	s := loadSuite(b)
	printExperiment("Table 6: validation of learned geohints",
		eval.ComputeTable6(s.Worlds[0], s.Results[0]).Format())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eval.ComputeTable6(s.Worlds[0], s.Results[0])
	}
}

func BenchmarkFig5_RTTCDF(b *testing.B) {
	s := loadSuite(b)
	printExperiment("Figure 5: ping vs traceroute RTTs",
		eval.ComputeFig5(s.Worlds[0]).Format())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eval.ComputeFig5(s.Worlds[0])
	}
}

func BenchmarkFig9_MethodComparison(b *testing.B) {
	s := loadSuite(b)
	f := eval.ComputeFig9(s.Worlds[0], s.Results[0])
	printExperiment("Figure 9: method comparison (40 km criterion)", f.Format())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eval.ComputeFig9(s.Worlds[0], s.Results[0])
	}
}

func BenchmarkFig10_LearnedHintProps(b *testing.B) {
	s := loadSuite(b)
	printExperiment("Figure 10: learned geohint properties",
		eval.ComputeFig10Multi(s.Worlds, s.Results).Format())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eval.ComputeFig10Multi(s.Worlds, s.Results)
	}
}

func BenchmarkFig11_HintCorrectness(b *testing.B) {
	s := loadSuite(b)
	printExperiment("Figure 11: learned hint correctness vs closest-VP RTT",
		eval.ComputeFig11Multi(s.Worlds, s.Results).Format())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eval.ComputeFig11Multi(s.Worlds, s.Results)
	}
}

func BenchmarkAblation_NoLearnedHints(b *testing.B) {
	s := loadSuite(b)
	noLearn, err := eval.RunWorldNoLearn(s.Worlds[0])
	if err != nil {
		b.Fatal(err)
	}
	printExperiment("Ablation (§6.1): learned geohints on/off",
		eval.ComputeAblation(s.Worlds[0], s.Results[0], noLearn).Format())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.LearnHints = false
		if _, err := core.Run(s.Worlds[0].Inputs(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_TracerouteOnly replays the DRoP-era constraint
// regime: the pipeline sees only traceroute-observed RTTs instead of
// the followup ping campaign, demonstrating why the paper added
// dedicated pings (§3.3, fig. 5).
func BenchmarkAblation_TracerouteOnly(b *testing.B) {
	s := loadSuite(b)
	w := s.Worlds[0]
	traceWorld := traceOnlyWorld(w)
	res, err := core.Run(traceWorld.Inputs(), core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	withPings := eval.ComputeFig9Hoiho(w, s.Results[0])
	traceOnly := eval.ComputeFig9Hoiho(traceWorld, res)
	printExperiment("Ablation: followup pings vs traceroute-only RTTs",
		fmt.Sprintf("%-22s %8s %8s\n%-22s %7.1f%% %7.1f%%\n%-22s %7.1f%% %7.1f%%\n",
			"", "pings", "trace-only",
			"correct (TP%)", withPings.TPPct(), traceOnly.TPPct(),
			"PPV", 100*withPings.PPV(), 100*traceOnly.PPV()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(traceWorld.Inputs(), core.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// traceOnlyWorld clones a world with its ping matrix replaced by the
// traceroute observations.
func traceOnlyWorld(w *synth.World) *synth.World {
	m := rtt.NewMatrix(w.Matrix.VPs())
	for _, r := range w.Corpus.Routers {
		for _, me := range w.Matrix.TraceMeasurements(r.ID) {
			_ = m.SetPing(r.ID, me.VP.Name, me.Sample)
			_ = m.SetTrace(r.ID, me.VP.Name, me.Sample)
		}
	}
	clone := *w
	clone.Matrix = m
	return &clone
}

func BenchmarkPipeline_FullRun(b *testing.B) {
	s := loadSuite(b)
	in := s.Worlds[0].Inputs()
	cfg := core.DefaultConfig()
	cfg.Workers = 1 // sequential baseline for BenchmarkRunParallel
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(in, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunParallel is BenchmarkPipeline_FullRun with the bounded
// worker pool at GOMAXPROCS — compare the two to see the per-suffix
// parallel speedup on multi-core hardware (results are identical; see
// TestRunParallelMatchesSequential).
func BenchmarkRunParallel(b *testing.B) {
	s := loadSuite(b)
	in := s.Worlds[0].Inputs()
	cfg := core.DefaultConfig()
	cfg.Workers = runtime.GOMAXPROCS(0)
	b.ReportMetric(float64(cfg.Workers), "workers")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(in, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunParallelTraced is BenchmarkRunParallel with a live
// tracer. The delta against BenchmarkRunParallel is the enabled-tracing
// cost; the disabled-tracing cost is zero by construction (nil-receiver
// no-ops, proven by obs.TestNilTracerZeroAlloc).
func BenchmarkRunParallelTraced(b *testing.B) {
	s := loadSuite(b)
	in := s.Worlds[0].Inputs()
	cfg := core.DefaultConfig()
	cfg.Workers = runtime.GOMAXPROCS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Tracer = obs.New(obs.Options{RetainSpans: true})
		if _, err := core.Run(in, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStage2 measures apparent-geohint tagging (parse + dictionary
// + RTT consistency) over the corpus's largest suffix group, isolated
// from regex learning.
func BenchmarkStage2(b *testing.B) {
	s := loadSuite(b)
	w := s.Worlds[0]
	in := w.Inputs()
	cfg := core.DefaultConfig()
	// Measure the suffix with the most hostnames (ties broken by name so
	// every run benchmarks the same group).
	counts := make(map[string]int)
	for _, sfx := range w.HintHostnames {
		counts[sfx]++
	}
	var suffix string
	for sfx, n := range counts {
		if suffix == "" || n > counts[suffix] || (n == counts[suffix] && sfx < suffix) {
			suffix = sfx
		}
	}
	tagged, err := core.TagSuffix(in, cfg, suffix)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(len(tagged)), "hostnames")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.TagSuffix(in, cfg, suffix); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGeolocBatch measures Index.LookupBatch over every hostname
// the corpus knows to carry a geohint, after one warming pass — the
// serving layer's steady state where the LRU absorbs repeats.
func BenchmarkGeolocBatch(b *testing.B) {
	s := loadSuite(b)
	w, res := s.Worlds[0], s.Results[0]
	ix, err := geoloc.New(res, geoloc.Options{Dict: w.Dict, PSL: w.PSL})
	if err != nil {
		b.Fatal(err)
	}
	hosts := make([]string, 0, len(w.HintHostnames))
	for h := range w.HintHostnames {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	if len(hosts) > geoloc.DefaultCacheSize {
		hosts = hosts[:geoloc.DefaultCacheSize]
	}
	ix.LookupBatch(hosts) // warm the cache
	b.ReportMetric(float64(len(hosts)), "hostnames")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.LookupBatch(hosts)
	}
}

// BenchmarkGoldenEndToEnd is the full published-conventions round trip
// over the committed golden corpus: load inputs from disk, learn, and
// render the conventions file. cmd/geobench runs the same workload (as
// "GoldenEndToEnd") when recording BENCH_NNNN.json trajectory files, so
// this benchmark is the local, `go test -bench`-native view of the
// number the regression gate tracks.
func BenchmarkGoldenEndToEnd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in, err := geoloc.LoadInputs("testdata/golden")
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.Run(in, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := core.WriteConventions(io.Discard, res); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorldGeneration(b *testing.B) {
	p, err := synth.ITDKPreset("ipv4-aug2020")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := synth.Generate(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGeolocateHostname(b *testing.B) {
	s := loadSuite(b)
	w, res := s.Worlds[0], s.Results[0]
	// Pick a usable NC and one of its hostnames.
	var host string
	var nc *core.NamingConvention
	for h, suffix := range w.HintHostnames {
		if c := res.NCs[suffix]; c != nil && c.Class.Usable() {
			if _, ok := core.Geolocate(c, w.Dict, h); ok {
				host, nc = h, c
				break
			}
		}
	}
	if nc == nil {
		b.Fatal("no usable NC found")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := core.Geolocate(nc, w.Dict, host); !ok {
			b.Fatal("geolocate failed")
		}
	}
}

// BenchmarkAblation_RankingPriors disables stage 4's facility/population
// candidate priors (DESIGN.md §4, item 4) and reports learned-hint
// validation with and without them.
func BenchmarkAblation_RankingPriors(b *testing.B) {
	s := loadSuite(b)
	w := s.Worlds[0]
	cfg := core.DefaultConfig()
	cfg.LearnRankFacility = false
	cfg.LearnRankPopulation = false
	res, err := core.Run(w.Inputs(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	withPriors := eval.ComputeTable6(w, s.Results[0])
	without := eval.ComputeTable6(w, res)
	printExperiment("Ablation: facility/population ranking priors",
		fmt.Sprintf("with priors:    %d/%d learned hints verified\nwithout priors: %d/%d learned hints verified\n",
			withPriors.Correct, withPriors.Total, without.Correct, without.Total))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(w.Inputs(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_PPVThreshold sweeps the usability thresholds of
// §5.5 (DESIGN.md §4, item 3) and reports the classification mix.
func BenchmarkAblation_PPVThreshold(b *testing.B) {
	s := loadSuite(b)
	w := s.Worlds[0]
	var report strings.Builder
	fmt.Fprintf(&report, "%-12s %6s %10s %6s\n", "good-PPV", "good", "promising", "poor")
	for _, goodPPV := range []float64{0.80, 0.90, 0.95, 0.99} {
		cfg := core.DefaultConfig()
		cfg.GoodPPV = goodPPV
		res, err := core.Run(w.Inputs(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		good, prom, poor := 0, 0, 0
		for _, nc := range res.NCs {
			switch nc.Class {
			case core.Good:
				good++
			case core.Promising:
				prom++
			default:
				poor++
			}
		}
		fmt.Fprintf(&report, "%-12.2f %6d %10d %6d\n", goodPPV, good, prom, poor)
	}
	printExperiment("Ablation: NC usability PPV threshold sweep", report.String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.GoodPPV = 0.95
		if _, err := core.Run(w.Inputs(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_CongruenceThreshold sweeps the congruent-router
// requirement for learning hints without an annotation (DESIGN.md §4,
// item 5) and reports how many hints are learned and verified.
func BenchmarkAblation_CongruenceThreshold(b *testing.B) {
	s := loadSuite(b)
	w := s.Worlds[0]
	var report strings.Builder
	fmt.Fprintf(&report, "%-12s %8s %10s\n", "threshold", "learned", "verified")
	for _, n := range []int{1, 2, 3, 5} {
		cfg := core.DefaultConfig()
		cfg.LearnCongruentNoCC = n
		res, err := core.Run(w.Inputs(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		t6 := eval.ComputeTable6(w, res)
		fmt.Fprintf(&report, "%-12d %8d %6d/%d\n", n, t6.Total, t6.Correct, t6.Total)
	}
	printExperiment("Ablation: congruent-router threshold sweep", report.String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.LearnCongruentNoCC = 1
		if _, err := core.Run(w.Inputs(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}
